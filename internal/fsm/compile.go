package fsm

import (
	"fmt"
	"sort"

	"protodsl/internal/expr"
)

// This file implements the compiled execution engine for behaviour
// specifications. CompileSpec lowers a checked Spec into a Program: a
// flat, state×event-indexed dispatch table whose guards, assignment
// right-hand sides and output field expressions are all pre-compiled
// (expr.Compile) closures over a slot-indexed frame. The Machine
// interpreter executes Programs directly — a Step is an integer table
// lookup plus closure calls, with no map-backed scope resolution and no
// per-step allocations on the hot path.

// Program is a compiled behaviour specification, ready for execution.
type Program struct {
	spec *Spec

	// State table.
	states   []string
	stateIdx map[string]int
	initIdx  int
	finals   []bool

	// Event table. Event i's parameters live at frame slots
	// nVars..nVars+len(params)-1 (the parameter region is shared between
	// events; only the current event's slots are live during a step).
	events    []compiledEvent
	eventIdx  map[string]int
	numEvents int

	// Variable slots 0..nVars-1, in Spec.Vars declaration order.
	nVars    int
	varNames []string
	varTypes []expr.Type
	varInit  []expr.Value
	varSlots map[string]int

	frameSize  int
	maxAssigns int
	maxOutputs int // most outputs on any single transition

	// Canonical message shapes (field i at slot i), shared with the wire
	// programs so decoded frames index straight into compiled guards.
	shapes map[string]*expr.MsgShape
	// outputShapes[i] is the shape of the i-th compiled output op
	// program-wide; machines preallocate one frame per op.
	outputShapes []*expr.MsgShape

	// rows[state*numEvents+event] drives dispatch.
	rows []dispatchRow
}

// MsgShape returns the canonical shape compiled for the named wire
// message (nil if the spec does not declare it). Engines wrap decoded
// slot frames with exactly this shape (expr.FrameMsg) so the compiled
// guard fast path hits.
func (p *Program) MsgShape(name string) *expr.MsgShape { return p.shapes[name] }

// EventID identifies an event for the positional StepEv fast path.
type EventID int

// EventID resolves an event name once; engines cache the result and step
// with it so the per-packet path never hashes the event name.
func (p *Program) EventID(name string) (EventID, bool) {
	idx, ok := p.eventIdx[name]
	return EventID(idx), ok
}

type compiledEvent struct {
	ev     *Event
	params []compiledParam
}

type compiledParam struct {
	name string
	typ  expr.Type
	slot int
}

type dispatchRow struct {
	// ts are the transitions for this (state, event) in declaration
	// (guard-evaluation) order.
	ts []compiledTransition
	// ignored marks a declared ignore; only meaningful when ts is empty.
	ignored bool
}

type compiledTransition struct {
	t     *Transition
	guard func(*expr.Frame) (bool, error) // nil means always enabled
	toIdx int

	assigns []compiledAssign
	outputs []compiledOutput
}

type compiledAssign struct {
	slot   int
	typ    expr.Type
	rhs    expr.Compiled
	target string // variable name, for error context
}

type compiledOutput struct {
	message string
	names   []string
	exprs   []expr.Compiled

	// Frame path: slots[j] is the canonical field slot of names[j] in
	// shape, frameIdx indexes the machine's preallocated output frames.
	// shape is nil when the message (or one of its fields) is unknown, in
	// which case only the map-building Step path can emit this output.
	shape    *expr.MsgShape
	slots    []int
	frameIdx int
}

// CompileSpec checks the spec and compiles it to an executable Program.
// Specs with check errors are refused, exactly as NewMachine refuses
// them: compiled execution is only defined for verified specifications.
func CompileSpec(spec *Spec) (*Program, error) {
	report := Check(spec)
	if !report.OK() {
		return nil, &CheckSpecError{Report: report}
	}
	return compileChecked(spec), nil
}

// CompileSpecFromChecked compiles a spec already known to pass Check; the
// caller supplies the report as evidence (mirrors NewMachineFromChecked).
func CompileSpecFromChecked(spec *Spec, report *Report) (*Program, error) {
	if report == nil || report.Spec != spec.Name || !report.OK() {
		return nil, fmt.Errorf("spec %s: not accompanied by a passing check report", spec.Name)
	}
	return compileChecked(spec), nil
}

// compileChecked lowers a checked spec. It cannot fail: every name and
// expression the lowering touches has been verified by Check.
func compileChecked(spec *Spec) *Program {
	p := &Program{
		spec:      spec,
		stateIdx:  make(map[string]int, len(spec.States)),
		eventIdx:  make(map[string]int, len(spec.Events)),
		varSlots:  make(map[string]int, len(spec.Vars)),
		numEvents: len(spec.Events),
	}

	for i := range spec.States {
		st := &spec.States[i]
		p.stateIdx[st.Name] = i
		p.states = append(p.states, st.Name)
		p.finals = append(p.finals, st.Final)
		if st.Init {
			p.initIdx = i
		}
	}

	// Canonical shapes for the spec's wire messages: field i at slot i,
	// matching the frames the wire programs fill. Compiled field accesses
	// on message-typed variables and parameters resolve against these.
	p.shapes = make(map[string]*expr.MsgShape, len(spec.Messages))
	for name, m := range spec.Messages {
		fields := make([]string, len(m.Fields))
		for j := range m.Fields {
			fields[j] = m.Fields[j].Name
		}
		p.shapes[name] = expr.NewMsgShape(name, fields)
	}

	// Variable slots in declaration order.
	base := expr.NewScopeLayout()
	p.nVars = len(spec.Vars)
	for i := range spec.Vars {
		v := &spec.Vars[i]
		slot := base.Add(v.Name)
		p.varSlots[v.Name] = slot
		p.varNames = append(p.varNames, v.Name)
		p.varTypes = append(p.varTypes, v.Type)
		if v.Type.Kind == expr.KindMsg {
			if shape := p.shapes[v.Type.MsgName]; shape != nil {
				base.SetShape(v.Name, shape)
			}
		}
		init := v.Init
		if !init.IsValid() {
			init = zeroValue(v.Type)
		}
		p.varInit = append(p.varInit, init)
	}

	// Event parameter slots: a shared region after the variables. Layouts
	// are per event so a parameter may shadow a variable of the same name
	// (the parameter's fresh slot wins inside that event's expressions).
	maxParams := 0
	layouts := make([]*expr.ScopeLayout, len(spec.Events))
	for i := range spec.Events {
		ev := &spec.Events[i]
		layout := base.Clone()
		ce := compiledEvent{ev: ev}
		for j, param := range ev.Params {
			slot := p.nVars + j
			layout.Bind(param.Name, slot)
			if param.Type.Kind == expr.KindMsg {
				if shape := p.shapes[param.Type.MsgName]; shape != nil {
					layout.SetShape(param.Name, shape)
				}
			}
			ce.params = append(ce.params, compiledParam{name: param.Name, typ: param.Type, slot: slot})
		}
		if len(ev.Params) > maxParams {
			maxParams = len(ev.Params)
		}
		p.eventIdx[ev.Name] = i
		p.events = append(p.events, ce)
		layouts[i] = layout
	}
	p.frameSize = p.nVars + maxParams

	// The flat dispatch table.
	p.rows = make([]dispatchRow, len(spec.States)*p.numEvents)
	for i := range spec.Transitions {
		t := &spec.Transitions[i]
		from := p.stateIdx[t.From]
		evIdx := p.eventIdx[t.Event]
		layout := layouts[evIdx]

		ct := compiledTransition{t: t, toIdx: p.stateIdx[t.To]}
		if t.Guard != nil {
			ct.guard = expr.CompileBool(t.Guard, layout)
		}
		for _, a := range t.Assigns {
			decl, _ := spec.VarByName(a.Var)
			ct.assigns = append(ct.assigns, compiledAssign{
				slot:   p.varSlots[a.Var],
				typ:    decl.Type,
				rhs:    expr.Compile(a.Expr, layout),
				target: a.Var,
			})
		}
		if len(t.Assigns) > p.maxAssigns {
			p.maxAssigns = len(t.Assigns)
		}
		for _, o := range t.Outputs {
			co := compiledOutput{message: o.Message, frameIdx: len(p.outputShapes)}
			co.shape = p.shapes[o.Message]
			for _, name := range sortedFieldNames(o.Fields) {
				co.names = append(co.names, name)
				co.exprs = append(co.exprs, expr.Compile(o.Fields[name], layout))
				if co.shape != nil {
					slot, ok := co.shape.Slot(name)
					if !ok {
						co.shape = nil // unknown field: map path only
					} else {
						co.slots = append(co.slots, slot)
					}
				}
			}
			p.outputShapes = append(p.outputShapes, co.shape)
			ct.outputs = append(ct.outputs, co)
		}
		if len(t.Outputs) > p.maxOutputs {
			p.maxOutputs = len(t.Outputs)
		}
		row := &p.rows[from*p.numEvents+evIdx]
		row.ts = append(row.ts, ct)
	}
	for i := range spec.Ignores {
		ig := &spec.Ignores[i]
		st, okS := p.stateIdx[ig.State]
		evIdx, okE := p.eventIdx[ig.Event]
		if okS && okE {
			p.rows[st*p.numEvents+evIdx].ignored = true
		}
	}
	return p
}

// Spec returns the specification the program was compiled from.
func (p *Program) Spec() *Spec { return p.spec }

// NewMachine instantiates the compiled program in its initial state.
func (p *Program) NewMachine() *Machine {
	m := &Machine{
		prog:      p,
		frame:     expr.NewFrame(p.frameSize),
		scratch:   make([]expr.Value, p.maxAssigns),
		outFrames: newOutputFrames(p),
		outBuf:    make([]FrameOutput, 0, p.maxOutputs),
	}
	m.resetVars()
	return m
}

// newOutputFrames preallocates one frame per compiled output op (nil for
// outputs whose message shape is unknown).
func newOutputFrames(p *Program) []*expr.Frame {
	frames := make([]*expr.Frame, len(p.outputShapes))
	for i, shape := range p.outputShapes {
		if shape != nil {
			frames[i] = expr.NewFrame(shape.NumFields())
		}
	}
	return frames
}

func sortedFieldNames(fields map[string]expr.Expr) []string {
	names := make([]string, 0, len(fields))
	for name := range fields {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
