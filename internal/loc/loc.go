// Package loc classifies Go source lines into protocol logic vs
// error-checking/control overhead, for experiment E2 — the paper's §1
// claim that hand-written protocol code is ≥50% error handling.
//
// Classification is syntactic (go/ast, no type information):
//
//   - an `if` statement whose condition involves an error-ish identifier
//     (err, *Err*, comparison to nil) is overhead, including its body;
//   - `return` statements that propagate or construct errors are overhead;
//   - explicit bounds/length/consistency checks (conditions comparing
//     len(...) or index arithmetic) are overhead;
//   - everything else inside function bodies is protocol logic.
//
// Lines outside functions (types, imports, docs) are not counted in
// either bucket: the fraction is over executable lines.
//
// Classification is a pure function over parsed source files; concurrent
// runs on distinct inputs are safe.
package loc

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
)

// Report summarises one source file or set.
type Report struct {
	// CodeLines is the number of executable lines inside functions.
	CodeLines int
	// OverheadLines is the subset classified as error checking/control.
	OverheadLines int
}

// Fraction returns overhead lines / code lines (0 when empty).
func (r Report) Fraction() float64 {
	if r.CodeLines == 0 {
		return 0
	}
	return float64(r.OverheadLines) / float64(r.CodeLines)
}

// Add accumulates another report.
func (r *Report) Add(o Report) {
	r.CodeLines += o.CodeLines
	r.OverheadLines += o.OverheadLines
}

// String renders the report.
func (r Report) String() string {
	return fmt.Sprintf("code=%d overhead=%d (%.1f%%)", r.CodeLines, r.OverheadLines, 100*r.Fraction())
}

// AnalyzeSource classifies a Go source file's contents.
func AnalyzeSource(filename, src string) (Report, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return Report{}, fmt.Errorf("loc: %w", err)
	}

	codeLines := make(map[int]bool)
	overheadLines := make(map[int]bool)

	markRange := func(m map[int]bool, from, to token.Pos) {
		start := fset.Position(from).Line
		end := fset.Position(to).Line
		for l := start; l <= end; l++ {
			m[l] = true
		}
	}

	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		// Every statement line inside the body is code. Blocks are
		// skipped as markers (their braces are not statements), but
		// their children are visited.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, isBlock := n.(*ast.BlockStmt); isBlock {
				return true
			}
			if _, isStmt := n.(ast.Stmt); isStmt {
				markRange(codeLines, n.Pos(), n.End())
			}
			return true
		})
		// Classify overhead constructs.
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.IfStmt:
				if isOverheadCond(s.Cond) {
					markRange(overheadLines, s.Pos(), s.End())
					return false // the whole guarded block is overhead
				}
			case *ast.ReturnStmt:
				if returnsError(s) {
					markRange(overheadLines, s.Pos(), s.End())
				}
			}
			return true
		})
	}

	var rep Report
	for l := range codeLines {
		rep.CodeLines++
		if overheadLines[l] {
			rep.OverheadLines++
		}
	}
	return rep, nil
}

// isOverheadCond reports whether an if-condition is an error/validity
// check rather than protocol logic.
func isOverheadCond(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.Ident:
			name := strings.ToLower(e.Name)
			if name == "err" || strings.HasSuffix(name, "err") || strings.HasPrefix(name, "err") {
				found = true
			}
		case *ast.BinaryExpr:
			// Comparisons against nil are validity checks.
			if isNil(e.X) || isNil(e.Y) {
				found = true
			}
			// Bounds/length checks: len(...) compared with something.
			if isLenCall(e.X) || isLenCall(e.Y) {
				switch e.Op {
				case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func isLenCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "len"
}

// returnsError reports whether a return statement propagates or
// constructs an error.
func returnsError(s *ast.ReturnStmt) bool {
	for _, res := range s.Results {
		found := false
		ast.Inspect(res, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.Ident:
				name := strings.ToLower(e.Name)
				if name == "err" || strings.HasSuffix(name, "error") {
					found = true
				}
			case *ast.SelectorExpr:
				if id, ok := e.X.(*ast.Ident); ok {
					if (id.Name == "fmt" && e.Sel.Name == "Errorf") ||
						(id.Name == "errors" && (e.Sel.Name == "New" || e.Sel.Name == "Join")) {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// CountDSLLines counts substantive lines of a .pdsl source: non-blank,
// non-comment. DSL definitions have no error-handling lines at all — the
// checks are performed by the compiler — which is E2's second row.
func CountDSLLines(src string) int {
	n := 0
	for _, l := range strings.Split(src, "\n") {
		if idx := strings.Index(l, "//"); idx >= 0 {
			l = l[:idx]
		}
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}
