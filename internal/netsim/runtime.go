package netsim

import "time"

// Timer is a cancellable scheduled callback, the primitive protocol
// timeouts are built from. The simulator's timers run on virtual time;
// internal/rtnet's run on the monotonic real clock — both honour the
// same guarantee: Cancel really cancels. A cancelled timer's callback
// never runs, the timer costs the event loop nothing, and (in the
// simulator) it can never advance virtual time.
type Timer interface {
	// Cancel prevents the timer from firing. Cancelling an already-fired
	// or already-cancelled timer is a no-op.
	Cancel()
	// Fired reports whether the callback has run.
	Fired() bool
	// Active reports whether the timer is still pending.
	Active() bool
}

// Runtime is the scheduling surface protocol engines run against. It is
// the seam between simulation and deployment: internal/arq's engines
// take a Runtime plus Ports and never know whether time is virtual
// (*Sim, deterministic discrete events) or real (an rtnet shard loop
// over a UDP socket).
//
// Implementations share the simulator's concurrency contract: a Runtime
// and everything attached to it belong to one goroutine (or one event
// loop), so engine callbacks — packet handlers, timer callbacks, posted
// functions — never race with one another.
type Runtime interface {
	// Now returns the current time as a monotonic duration since the
	// runtime's zero (simulation start, or socket creation for rtnet).
	Now() time.Duration
	// After schedules fn to run after duration d and returns a
	// cancellable timer.
	After(d time.Duration, fn func()) Timer
	// Post schedules fn to run "immediately": at the current time, after
	// any work already queued for this instant.
	Post(fn func())
}

var _ Runtime = (*Sim)(nil)
