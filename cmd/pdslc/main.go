// Command pdslc is the protocol-DSL compiler: it checks .pdsl definitions,
// generates Go code, renders wire diagrams and derives behavioural test
// suites.
//
// Usage:
//
//	pdslc check <file.pdsl>            statically check the protocol
//	pdslc gen -pkg NAME <file.pdsl>    emit generated code (default -emit go)
//	pdslc diagram <file.pdsl>          render RFC-style ASCII diagrams
//	pdslc dot <file.pdsl>              render machines as Graphviz digraphs
//	pdslc tests <file.pdsl>            derive behavioural test suites
//
// `gen` selects a backend with -emit (currently only "go", the AOT
// source backend over the compiled wire/fsm programs) and writes to
// stdout or, with -o FILE, atomically to a file — the form used by the
// //go:generate directives in the committed gen packages.
//
// Pass "-" as the file to read from stdin; `pdslc <cmd> -builtin-arq`
// uses the embedded §3.4 ARQ protocol (`gen` also accepts
// -builtin-ipv4 for the embedded IPv4 header).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"protodsl/internal/codegen"
	"protodsl/internal/dsl"
	"protodsl/internal/fsm"
	"protodsl/internal/testgen"
	"protodsl/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdslc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: pdslc <check|gen|diagram|tests> [flags] <file.pdsl | - | -builtin-arq>")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "check":
		return cmdCheck(rest, out)
	case "gen":
		return cmdGen(rest, out)
	case "diagram":
		return cmdDiagram(rest, out)
	case "dot":
		return cmdDot(rest, out)
	case "tests":
		return cmdTests(rest, out)
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func cmdDot(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dot", flag.ContinueOnError)
	builtin := fs.Bool("builtin-arq", false, "render the embedded ARQ protocol")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, builtin)
	if err != nil {
		return err
	}
	proto, _, err := dsl.Compile(src)
	if err != nil {
		return err
	}
	for _, m := range proto.Machines {
		fmt.Fprintln(out, fsm.Dot(m))
	}
	return nil
}

// loadSource resolves the source argument of a subcommand.
func loadSource(fs *flag.FlagSet, builtinARQ *bool) (string, error) {
	if *builtinARQ {
		return dsl.ARQSource, nil
	}
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one input file (or -builtin-arq)")
	}
	name := fs.Arg(0)
	if name == "-" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func cmdCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	builtin := fs.Bool("builtin-arq", false, "check the embedded ARQ protocol")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, builtin)
	if err != nil {
		return err
	}
	proto, reports, err := dsl.Compile(src)
	if err != nil {
		if len(reports) > 0 {
			for _, r := range reports {
				printReport(out, r)
			}
		}
		return err
	}
	fmt.Fprintf(out, "protocol %s: OK\n", proto.Name)
	fmt.Fprintf(out, "  messages: %d\n", len(proto.MessageOrder))
	for _, name := range proto.MessageOrder {
		layout, err := wire.Compile(proto.Messages[name])
		if err != nil {
			return err
		}
		if size, fixed := layout.FixedSize(); fixed {
			fmt.Fprintf(out, "    %s (%d bytes)\n", name, size)
		} else {
			fmt.Fprintf(out, "    %s (variable size)\n", name)
		}
	}
	fmt.Fprintf(out, "  machines: %d\n", len(proto.Machines))
	for _, r := range reports {
		printReport(out, r)
	}
	return nil
}

func printReport(out io.Writer, r *fsm.Report) {
	status := "OK"
	if !r.OK() {
		status = "FAILED"
	}
	fmt.Fprintf(out, "    %s: %s (%d error(s), %d warning(s))\n",
		r.Spec, status, len(r.Errors()), len(r.Warnings()))
	for _, issue := range r.Issues {
		fmt.Fprintf(out, "      %s\n", issue)
	}
}

// genBackends lists the supported -emit backends. Each entry maps the
// flag value to the generator; an unknown value is reported with the
// full list so callers learn what exists.
var genBackends = []string{"go"}

func cmdGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	pkg := fs.String("pkg", "gen", "generated package name")
	emit := fs.String("emit", "go", "output backend (supported: go)")
	outFile := fs.String("o", "", "write output to file instead of stdout")
	runtimeImport := fs.String("runtime", "", "genrt import path override")
	builtin := fs.Bool("builtin-arq", false, "generate from the embedded ARQ protocol")
	builtinIPv4 := fs.Bool("builtin-ipv4", false, "generate from the embedded IPv4 header protocol")
	if err := fs.Parse(args); err != nil {
		return err
	}
	known := false
	for _, b := range genBackends {
		if *emit == b {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("unknown -emit backend %q (supported: %s)", *emit, strings.Join(genBackends, ", "))
	}
	var src string
	var err error
	if *builtinIPv4 {
		src = dsl.IPv4Source
	} else {
		src, err = loadSource(fs, builtin)
		if err != nil {
			return err
		}
	}
	proto, _, err := dsl.Compile(src)
	if err != nil {
		return err
	}
	code, err := codegen.Generate(proto, codegen.Options{
		Package:       *pkg,
		RuntimeImport: *runtimeImport,
	})
	if err != nil {
		return err
	}
	if *outFile != "" {
		return os.WriteFile(*outFile, code, 0o644)
	}
	_, err = out.Write(code)
	return err
}

func cmdDiagram(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("diagram", flag.ContinueOnError)
	builtin := fs.Bool("builtin-arq", false, "render the embedded ARQ protocol")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, builtin)
	if err != nil {
		return err
	}
	proto, err := dsl.Parse(src)
	if err != nil {
		return err
	}
	for _, name := range proto.MessageOrder {
		fmt.Fprintf(out, "message %s:\n\n%s\n", name, wire.Diagram(proto.Messages[name]))
	}
	return nil
}

func cmdTests(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tests", flag.ContinueOnError)
	builtin := fs.Bool("builtin-arq", false, "derive tests for the embedded ARQ protocol")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src, err := loadSource(fs, builtin)
	if err != nil {
		return err
	}
	proto, _, err := dsl.Compile(src)
	if err != nil {
		return err
	}
	for _, m := range proto.Machines {
		suite, err := testgen.Generate(m, testgen.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "machine %s: %d cases (fire=%d reject=%d ignore=%d), transition coverage %.0f%%\n",
			m.Name, len(suite.Cases),
			suite.Count(testgen.KindFire), suite.Count(testgen.KindReject), suite.Count(testgen.KindIgnore),
			100*suite.Coverage())
		for _, c := range suite.Cases {
			fmt.Fprintf(out, "  [%s] %s\n", c.Kind, c.Name)
		}
		if err := testgen.Run(m, suite); err != nil {
			return fmt.Errorf("machine %s: generated suite failed: %w", m.Name, err)
		}
		fmt.Fprintf(out, "  suite replayed: PASS\n")
	}
	return nil
}
