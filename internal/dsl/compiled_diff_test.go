package dsl

import (
	"errors"
	"fmt"
	"testing"

	"protodsl/internal/expr"
	"protodsl/internal/wire"
)

// This file differentially tests the compiled expression engine against
// the tree-walking interpreter: every checked expression reachable from
// the canonical ARQ and IPv4 protocol definitions — transition guards,
// assignment right-hand sides, output fields, computed message fields
// and length expressions — is evaluated through both expr.Eval and the
// expr.Compile closure over several scopes, and the results (values and
// errors, including division by zero and undefined variables) must be
// identical.

// sampleValue builds a deterministic value of the given type; seed
// varies the payload so guards exercise both branches.
func sampleValue(t expr.Type, msgs map[string]*wire.Message, seed uint64) expr.Value {
	switch t.Kind {
	case expr.KindBool:
		return expr.Bool(seed%2 == 0)
	case expr.KindUint:
		return expr.Uint(seed*3+1, t.Bits)
	case expr.KindBytes:
		return expr.Bytes([]byte{byte(seed), byte(seed + 1), byte(seed + 2)})
	case expr.KindString:
		return expr.Str(fmt.Sprintf("s%d", seed))
	case expr.KindMsg:
		m := msgs[t.MsgName]
		fields := make(map[string]expr.Value, len(m.Fields))
		for i := range m.Fields {
			f := &m.Fields[i]
			fields[f.Name] = sampleValue(f.Type(), msgs, seed+uint64(i))
		}
		return expr.Msg(t.MsgName, fields)
	default:
		return expr.Value{}
	}
}

// diffCase is one (expression, scope-variable-types) pair to compare.
type diffCase struct {
	where string
	e     expr.Expr
	vars  map[string]expr.Type
}

// collectCases walks a compiled protocol and gathers every expression
// with its typing scope.
func collectCases(t *testing.T, proto *Protocol) []diffCase {
	t.Helper()
	var cases []diffCase
	for _, name := range proto.MessageOrder {
		m := proto.Messages[name]
		for i := range m.Fields {
			f := &m.Fields[i]
			// Scope of computed fields: the message's plain fields.
			// Scope of length expressions: the preceding fields. The plain
			// scope is a superset for sampling purposes.
			scope := make(map[string]expr.Type)
			for j := range m.Fields {
				g := &m.Fields[j]
				if g.Compute == nil {
					scope[g.Name] = g.Type()
				}
			}
			if f.Compute != nil && f.Compute.Kind == wire.ComputeExpr {
				cases = append(cases, diffCase{
					where: fmt.Sprintf("message %s field %s compute", name, f.Name),
					e:     f.Compute.Expr, vars: scope,
				})
			}
			if f.LenKind == wire.LenExpr {
				prefix := make(map[string]expr.Type)
				for j := 0; j < i; j++ {
					prefix[m.Fields[j].Name] = m.Fields[j].Type()
				}
				cases = append(cases, diffCase{
					where: fmt.Sprintf("message %s field %s length", name, f.Name),
					e:     f.LenExpr, vars: prefix,
				})
			}
		}
	}
	for _, spec := range proto.Machines {
		for i := range spec.Transitions {
			tr := &spec.Transitions[i]
			ev, ok := spec.EventByName(tr.Event)
			if !ok {
				t.Fatalf("transition %s: unknown event", tr.String())
			}
			scope := make(map[string]expr.Type)
			for _, v := range spec.Vars {
				scope[v.Name] = v.Type
			}
			for _, p := range ev.Params {
				scope[p.Name] = p.Type
			}
			if tr.Guard != nil {
				cases = append(cases, diffCase{
					where: fmt.Sprintf("machine %s %s guard", spec.Name, tr.String()),
					e:     tr.Guard, vars: scope,
				})
			}
			for _, a := range tr.Assigns {
				cases = append(cases, diffCase{
					where: fmt.Sprintf("machine %s %s assign %s", spec.Name, tr.String(), a.Var),
					e:     a.Expr, vars: scope,
				})
			}
			for _, out := range tr.Outputs {
				for fname, fe := range out.Fields {
					cases = append(cases, diffCase{
						where: fmt.Sprintf("machine %s %s output %s.%s", spec.Name, tr.String(), out.Message, fname),
						e:     fe, vars: scope,
					})
				}
			}
		}
	}
	return cases
}

// runDiff evaluates the expression through both engines over the given
// concrete scope and requires identical outcomes.
func runDiff(t *testing.T, where string, e expr.Expr, vals map[string]expr.Value) {
	t.Helper()
	scope := expr.MapScope(vals)
	layout := expr.NewScopeLayout()
	for name := range vals {
		layout.Add(name)
	}
	frame := layout.NewFrame()
	for name, v := range vals {
		slot, _ := layout.Slot(name)
		frame.Set(slot, v)
	}
	compiled := expr.Compile(e, layout)

	wantV, wantErr := expr.Eval(e, scope)
	gotV, gotErr := compiled(frame)

	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: %s: eval err = %v, compiled err = %v", where, e.String(), wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("%s: %s: error mismatch\n eval:     %v\n compiled: %v", where, e.String(), wantErr, gotErr)
		}
		if errors.Is(wantErr, expr.ErrDivisionByZero) != errors.Is(gotErr, expr.ErrDivisionByZero) {
			t.Fatalf("%s: %s: division-by-zero classification differs", where, e.String())
		}
		return
	}
	if !wantV.Equal(gotV) {
		t.Fatalf("%s: %s: eval = %s, compiled = %s", where, e.String(), wantV, gotV)
	}
	if wantV.Kind() == expr.KindUint && wantV.Bits() != gotV.Bits() {
		t.Fatalf("%s: %s: width mismatch: eval u%d, compiled u%d", where, e.String(), wantV.Bits(), gotV.Bits())
	}
}

func TestCompiledEngineDifferential(t *testing.T) {
	total := 0
	for _, src := range []struct {
		name   string
		source string
	}{
		{"arq", ARQSource},
		{"ipv4", IPv4Source},
	} {
		proto, _, err := Compile(src.source)
		if err != nil {
			t.Fatalf("%s: %v", src.name, err)
		}
		cases := collectCases(t, proto)
		if len(cases) == 0 {
			t.Fatalf("%s: no expressions collected", src.name)
		}
		total += len(cases)
		for _, c := range cases {
			for seed := uint64(0); seed < 4; seed++ {
				vals := make(map[string]expr.Value, len(c.vars))
				for name, typ := range c.vars {
					vals[name] = sampleValue(typ, proto.Messages, seed)
				}
				runDiff(t, fmt.Sprintf("%s/%s/seed=%d", src.name, c.where, seed), c.e, vals)
			}
		}
	}
	t.Logf("compared %d checked expressions across both engines", total)
}

// TestCompiledEngineDifferentialErrors pins the two runtime failure
// modes: both engines must report division by zero and undefined
// variables identically (same sentinel, same message, same offset).
func TestCompiledEngineDifferentialErrors(t *testing.T) {
	vals := map[string]expr.Value{
		"seq":  expr.U8(7),
		"zero": expr.U8(0),
		"pkt": expr.Msg("Packet", map[string]expr.Value{
			"seq": expr.U8(7),
		}),
	}
	for _, src := range []string{
		"seq / zero",
		"seq % zero",
		"100 / (seq - 7)",
		"missing + 1",           // undefined variable
		"missing",               // bare undefined variable
		"pkt.nosuch == seq",     // missing message field
		"seq.field == 1",        // field access on non-message
		"pkt.seq == seq",        // success path through msg scope
		"seq / (zero + 1) + 2",  // success path with division
		"missing.field + horse", // undefined in nested position
	} {
		e, err := expr.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		runDiff(t, "errors", e, vals)
	}

	// Division by zero must carry the sentinel through the compiled path.
	e := expr.MustParse("seq / zero")
	layout := expr.NewScopeLayout()
	sSeq, sZero := layout.Add("seq"), layout.Add("zero")
	f := layout.NewFrame()
	f.Set(sSeq, expr.U8(7))
	f.Set(sZero, expr.U8(0))
	if _, err := expr.Compile(e, layout)(f); !errors.Is(err, expr.ErrDivisionByZero) {
		t.Fatalf("compiled division by zero: got %v, want ErrDivisionByZero", err)
	}
}
