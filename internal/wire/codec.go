package wire

import (
	"errors"
	"fmt"

	"protodsl/internal/checksum"
	"protodsl/internal/expr"
)

// Codec errors. Decode failures wrap these sentinel errors so callers can
// match the failure class with errors.Is.
var (
	// ErrChecksumMismatch is returned when a decoded checksum field does
	// not match the checksum recomputed over the received bytes.
	ErrChecksumMismatch = errors.New("checksum mismatch")
	// ErrFieldMismatch is returned when a decoded computed field (e.g. a
	// length) does not match its recomputed value.
	ErrFieldMismatch = errors.New("computed field mismatch")
	// ErrMissingField is returned by Encode when a required plain field
	// was not supplied.
	ErrMissingField = errors.New("missing field")
	// ErrBadFieldValue is returned by Encode when a supplied value has the
	// wrong kind or does not fit the field.
	ErrBadFieldValue = errors.New("bad field value")
	// ErrTrailingBytes is returned by Decode when input remains after the
	// final field.
	ErrTrailingBytes = errors.New("trailing bytes after message")
)

// CodecError decorates a codec failure with message/field context.
type CodecError struct {
	Message string
	Field   string
	Err     error
}

// Error implements error.
func (e *CodecError) Error() string {
	return fmt.Sprintf("message %s: field %s: %v", e.Message, e.Field, e.Err)
}

// Unwrap exposes the failure class for errors.Is.
func (e *CodecError) Unwrap() error { return e.Err }

func codecErr(msg, field string, err error) error {
	return &CodecError{Message: msg, Field: field, Err: err}
}

// Encode serialises the message from the given field values.
//
// Encode/AppendEncode/Decode/DecodeInto are the map-based compatibility
// codec: convenient for tests, examples and one-shot callers, and the
// reference the slot programs are differentially tested against. The
// per-packet hot path is Layout.Program() (see program.go), which runs
// the same checks over slot frames without any map operation.
//
// Plain fields must all be present with values of the field's type.
// Computed fields (lengths, checksums) are filled in automatically; if a
// computed or auto-length field IS supplied, its value must agree with the
// computed one (so callers cannot construct self-inconsistent packets —
// the encode-side half of correctness by construction).
func (l *Layout) Encode(values map[string]expr.Value) ([]byte, error) {
	filled := make(map[string]expr.Value, len(l.msg.Fields))
	for k, v := range values {
		filled[k] = v
	}
	return l.AppendEncode(nil, filled)
}

// AppendEncode serialises the message into the tail of dst and returns
// the extended slice. It is the allocation-free encode path: reusing dst
// across calls amortises the output buffer, and — unlike Encode — the
// auto-computed fields (lengths, checksums) are written back into values
// rather than into a private copy, so callers should pass a map they own
// (a reusable scratch map, or a machine output's field map).
func (l *Layout) AppendEncode(dst []byte, values map[string]expr.Value) ([]byte, error) {
	m := l.msg
	filled := values

	// Auto-fill plain uint fields that serve as LenField lengths.
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Kind != FieldBytes || f.LenKind != LenField {
			continue
		}
		payload, ok := filled[f.Name]
		if !ok || payload.Kind() != expr.KindBytes {
			continue // reported as missing/bad below
		}
		lenField, _ := m.Field(f.LenField)
		autoLen := expr.Uint(uint64(len(payload.RawBytes())), lenField.Bits)
		if prev, ok := filled[f.LenField]; ok && lenField.Compute == nil {
			if prev.AsUint() != autoLen.AsUint() {
				return nil, codecErr(m.Name, f.LenField,
					fmt.Errorf("%w: supplied length %d != payload length %d",
						ErrBadFieldValue, prev.AsUint(), autoLen.AsUint()))
			}
		}
		if lenField.Compute == nil {
			filled[f.LenField] = autoLen
		}
	}

	// Evaluate expression-computed fields (over plain fields only).
	scope := expr.MapScope(filled)
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Compute == nil || f.Compute.Kind != ComputeExpr {
			continue
		}
		v, err := expr.Eval(f.Compute.Expr, scope)
		if err != nil {
			return nil, codecErr(m.Name, f.Name, err)
		}
		v = v.WithBits(f.Bits)
		if prev, ok := filled[f.Name]; ok && prev.AsUint() != v.AsUint() {
			return nil, codecErr(m.Name, f.Name,
				fmt.Errorf("%w: supplied %d != computed %d", ErrBadFieldValue, prev.AsUint(), v.AsUint()))
		}
		filled[f.Name] = v
	}

	// First pass: serialise with checksum fields zeroed.
	w := &bitWriter{buf: dst, base: len(dst)}
	for i := range m.Fields {
		f := &m.Fields[i]
		if err := encodeField(m, f, filled, w); err != nil {
			return nil, err
		}
	}
	if !w.aligned() {
		return nil, codecErr(m.Name, "", fmt.Errorf("encoded size is not byte-aligned"))
	}

	// Second pass: compute every checksum over the still-zeroed
	// serialisation, then patch — decode zeroes all checksum fields at
	// once before verifying, so patching one checksum before computing
	// the next would break multi-checksum round-trips.
	var sumsBuf [4]uint64
	sums := sumsBuf[:0]
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Compute == nil || f.Compute.Kind != ComputeChecksum {
			continue
		}
		sums = append(sums, checksumOf(f.Compute.Algo, w.buf[w.base:]))
	}
	idx := 0
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Compute == nil || f.Compute.Kind != ComputeChecksum {
			continue
		}
		off, _ := l.FieldOffset(f.Name)
		patchUint(w.buf, w.base+off/8, f.Bits/8, sums[idx])
		idx++
	}
	return w.buf, nil
}

func encodeField(m *Message, f *Field, filled map[string]expr.Value, w *bitWriter) error {
	if f.Compute != nil && f.Compute.Kind == ComputeChecksum {
		w.writeBits(0, f.Bits) // patched later
		return nil
	}
	v, ok := filled[f.Name]
	if !ok {
		return codecErr(m.Name, f.Name, ErrMissingField)
	}
	switch f.Kind {
	case FieldUint:
		if v.Kind() != expr.KindUint {
			return codecErr(m.Name, f.Name, fmt.Errorf("%w: expected uint, got %s", ErrBadFieldValue, v.Kind()))
		}
		if f.Bits < 64 && v.AsUint() >= 1<<uint(f.Bits) {
			return codecErr(m.Name, f.Name,
				fmt.Errorf("%w: value %d does not fit in %d bits", ErrBadFieldValue, v.AsUint(), f.Bits))
		}
		w.writeBits(v.AsUint(), f.Bits)
		return nil
	case FieldBytes:
		if v.Kind() != expr.KindBytes {
			return codecErr(m.Name, f.Name, fmt.Errorf("%w: expected bytes, got %s", ErrBadFieldValue, v.Kind()))
		}
		b := v.RawBytes()
		switch f.LenKind {
		case LenFixed:
			if len(b) != f.LenBytes {
				return codecErr(m.Name, f.Name,
					fmt.Errorf("%w: fixed-length field needs %d bytes, got %d", ErrBadFieldValue, f.LenBytes, len(b)))
			}
		case LenExpr:
			want, err := expr.Eval(f.LenExpr, expr.MapScope(filled))
			if err != nil {
				return codecErr(m.Name, f.Name, err)
			}
			if uint64(len(b)) != want.AsUint() {
				return codecErr(m.Name, f.Name,
					fmt.Errorf("%w: length expression gives %d, payload is %d bytes", ErrBadFieldValue, want.AsUint(), len(b)))
			}
		}
		return w.writeBytes(b)
	default:
		return codecErr(m.Name, f.Name, fmt.Errorf("invalid field kind"))
	}
}

// Decode parses and validates the message from data.
//
// Every computed field is recomputed and compared against the received
// value; a successful Decode therefore *is* the validation step that makes
// the result a checked packet in the sense of §3.3. Callers that need a
// transferable witness wrap the result with a proof.Validator.
//
// The returned byte-field values are copies, independent of data.
func (l *Layout) Decode(data []byte) (map[string]expr.Value, error) {
	values := make(map[string]expr.Value, len(l.msg.Fields))
	if err := l.decode(values, data, false); err != nil {
		return nil, err
	}
	return values, nil
}

// DecodeInto parses and validates the message into a caller-owned value
// map, performing the same checks as Decode without its allocations: the
// map is cleared and reused, and byte-field values alias data rather than
// copying it. During checksum verification the checksum bytes of data are
// briefly zeroed in place and restored before returning, so data must not
// be read concurrently. Callers that need values outliving data (or an
// untouched input buffer) should use Decode.
func (l *Layout) DecodeInto(values map[string]expr.Value, data []byte) error {
	clear(values)
	return l.decode(values, data, true)
}

// decode is the shared Decode/DecodeInto implementation. When inPlace is
// true byte fields alias data and checksums are verified by zero-patching
// data temporarily; otherwise byte fields and the checksum scratch are
// copies.
func (l *Layout) decode(values map[string]expr.Value, data []byte, inPlace bool) error {
	m := l.msg
	r := &bitReader{buf: data}

	for i := range m.Fields {
		f := &m.Fields[i]
		switch f.Kind {
		case FieldUint:
			v, err := r.readBits(f.Bits)
			if err != nil {
				return codecErr(m.Name, f.Name, err)
			}
			values[f.Name] = expr.Uint(v, f.Bits)
		case FieldBytes:
			n, err := byteLength(m, f, values, r)
			if err != nil {
				return err
			}
			if inPlace {
				b, err := r.readBytesView(n)
				if err != nil {
					return codecErr(m.Name, f.Name, err)
				}
				values[f.Name] = expr.BytesView(b)
			} else {
				b, err := r.readBytes(n)
				if err != nil {
					return codecErr(m.Name, f.Name, err)
				}
				values[f.Name] = expr.BytesView(b) // already a private copy
			}
		}
	}
	if !r.done() {
		return codecErr(m.Name, "", fmt.Errorf("%w: %d bytes", ErrTrailingBytes, r.remainingBytes()))
	}

	// Verify expression-computed fields.
	scope := expr.MapScope(values)
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Compute == nil || f.Compute.Kind != ComputeExpr {
			continue
		}
		want, err := expr.Eval(f.Compute.Expr, scope)
		if err != nil {
			return codecErr(m.Name, f.Name, err)
		}
		if got := values[f.Name]; got.AsUint() != want.WithBits(f.Bits).AsUint() {
			return codecErr(m.Name, f.Name,
				fmt.Errorf("%w: received %d, computed %d", ErrFieldMismatch, got.AsUint(), want.AsUint()))
		}
	}

	// Verify checksum fields: recompute over the wire bytes with all
	// checksum fields zeroed.
	return l.verifyChecksums(data, values, inPlace)
}

// verifyChecksums recomputes every checksum field over the wire bytes
// with all checksum fields zeroed. When inPlace is true the zeroing is
// patched directly into data and restored afterwards (no allocation);
// otherwise it happens on a private copy.
func (l *Layout) verifyChecksums(data []byte, values map[string]expr.Value, inPlace bool) error {
	m := l.msg
	var zeroed []byte
	restore := false
	defer func() {
		if !restore {
			return
		}
		// Restore the received checksum bytes patched out of data.
		for i := range m.Fields {
			f := &m.Fields[i]
			if f.Compute != nil && f.Compute.Kind == ComputeChecksum {
				off, _ := l.FieldOffset(f.Name)
				patchUint(data, off/8, f.Bits/8, values[f.Name].AsUint())
			}
		}
	}()
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Compute == nil || f.Compute.Kind != ComputeChecksum {
			continue
		}
		if zeroed == nil {
			if inPlace {
				zeroed = data
				restore = true
			} else {
				zeroed = make([]byte, len(data))
				copy(zeroed, data)
			}
			for j := range m.Fields {
				g := &m.Fields[j]
				if g.Compute != nil && g.Compute.Kind == ComputeChecksum {
					off, _ := l.FieldOffset(g.Name)
					for k := 0; k < g.Bits/8; k++ {
						zeroed[off/8+k] = 0
					}
				}
			}
		}
		want := checksumOf(f.Compute.Algo, zeroed)
		if got := values[f.Name].AsUint(); got != want {
			return codecErr(m.Name, f.Name,
				fmt.Errorf("%w: received %#x, computed %#x", ErrChecksumMismatch, got, want))
		}
	}
	return nil
}

func byteLength(m *Message, f *Field, values map[string]expr.Value, r *bitReader) (int, error) {
	switch f.LenKind {
	case LenFixed:
		return f.LenBytes, nil
	case LenField:
		v, ok := values[f.LenField]
		if !ok {
			return 0, codecErr(m.Name, f.Name, fmt.Errorf("length field %q not yet decoded", f.LenField))
		}
		return int(v.AsUint()), nil
	case LenExpr:
		v, err := expr.Eval(f.LenExpr, expr.MapScope(values))
		if err != nil {
			return 0, codecErr(m.Name, f.Name, err)
		}
		return int(v.AsUint()), nil
	case LenRest:
		return r.remainingBytes(), nil
	default:
		return 0, codecErr(m.Name, f.Name, fmt.Errorf("invalid length discipline"))
	}
}

func checksumOf(algo ChecksumAlgo, data []byte) uint64 {
	switch algo {
	case ChecksumSum8:
		return checksum.Sum8(data)
	case ChecksumInet16:
		return uint64(checksum.Inet16(data))
	case ChecksumCRC32:
		return uint64(checksum.CRC32(data))
	default:
		return 0
	}
}

func patchUint(buf []byte, byteOff, nBytes int, v uint64) {
	for i := 0; i < nBytes; i++ {
		shift := uint(8 * (nBytes - 1 - i))
		buf[byteOff+i] = byte(v >> shift)
	}
}
