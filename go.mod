module protodsl

go 1.24
