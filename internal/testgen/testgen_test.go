package testgen

import (
	"testing"

	"protodsl/internal/arq"
	"protodsl/internal/fsm"
)

func TestGenerateARQSenderSuite(t *testing.T) {
	spec := arq.SenderSpec()
	suite, err := Generate(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if suite.TransitionsTotal != len(spec.Transitions) {
		t.Errorf("total = %d", suite.TransitionsTotal)
	}
	if suite.Coverage() != 1.0 {
		t.Errorf("coverage = %.2f, want 1.0 (all sender transitions reachable)", suite.Coverage())
	}
	if suite.Count(KindFire) != len(spec.Transitions) {
		t.Errorf("fire cases = %d, want %d", suite.Count(KindFire), len(spec.Transitions))
	}
	// (Wait, OK) with a mismatched ack must yield a rejection case.
	if suite.Count(KindReject) == 0 {
		t.Error("no rejection cases generated for guarded transitions")
	}
	// All 12 declared ignores are exercised.
	if got := suite.Count(KindIgnore); got != len(spec.Ignores) {
		t.Errorf("ignore cases = %d, want %d", got, len(spec.Ignores))
	}
}

func TestGeneratedSuiteRunsGreen(t *testing.T) {
	for _, spec := range []*fsm.Spec{arq.SenderSpec(), arq.ReceiverSpec()} {
		suite, err := Generate(spec, Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := Run(spec, suite); err != nil {
			t.Errorf("%s: generated suite failed on its own spec: %v", spec.Name, err)
		}
	}
}

// TestSuiteDetectsSpecDrift: a suite generated from the correct spec must
// fail when replayed against a behaviourally different spec — that is
// what makes it a regression harness.
func TestSuiteDetectsSpecDrift(t *testing.T) {
	good := arq.SenderSpec()
	suite, err := Generate(good, Options{})
	if err != nil {
		t.Fatal(err)
	}

	drifted := arq.SenderSpec()
	// Change FAIL to land in Timeout instead of Ready.
	for i := range drifted.Transitions {
		if drifted.Transitions[i].Name == "fail" {
			drifted.Transitions[i].To = "Timeout"
		}
	}
	if report := fsm.Check(drifted); !report.OK() {
		t.Fatalf("drifted spec must still check: %v", report.Errors())
	}
	if err := Run(drifted, suite); err == nil {
		t.Error("suite passed against a drifted spec — no regression power")
	}
}

func TestGenerateRefusesBrokenSpec(t *testing.T) {
	spec := arq.SenderSpec()
	spec.Transitions[0].To = "Nowhere"
	if _, err := Generate(spec, Options{}); err == nil {
		t.Error("broken spec accepted")
	}
}

func TestReceiverGuardCoverage(t *testing.T) {
	// The receiver's two guarded RECV transitions (accept / dupack) need
	// both a matching and a mismatching packet seq — the guard-aware
	// candidate generator must find both.
	suite, err := Generate(arq.ReceiverSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, c := range suite.Cases {
		if c.Kind == KindFire {
			names = append(names, c.ExpectTransition)
		}
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"accept", "dupack", "close"} {
		if !found[want] {
			t.Errorf("transition %q not covered: %v", want, names)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindFire.String() != "fire" || KindReject.String() != "reject" ||
		KindIgnore.String() != "ignore" || Kind(9).String() != "unknown" {
		t.Error("kind names wrong")
	}
}

func TestCoverageEmptySuite(t *testing.T) {
	s := &Suite{}
	if s.Coverage() != 0 {
		t.Error("empty coverage not 0")
	}
}
