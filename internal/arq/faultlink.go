package arq

import (
	"protodsl/internal/faults"
	"protodsl/internal/netsim"
)

// connectWithFaults wires a<->b with the given link parameters, layering
// one private fault-injector instance per direction (ids 0 and 1) when
// sch is non-nil. A nil schedule takes the plain symmetric Connect path,
// so faults-off runs stay byte-identical to the pinned golden traces.
func connectWithFaults(sim *netsim.Sim, a, b *netsim.Endpoint, link netsim.LinkParams, sch *faults.Schedule) error {
	if sch == nil {
		sim.Connect(a, b, link)
		return nil
	}
	fwd, rev := link, link
	fi, err := sch.Instance(0)
	if err != nil {
		return err
	}
	ri, err := sch.Instance(1)
	if err != nil {
		return err
	}
	fwd.Faults, rev.Faults = fi, ri
	sim.ConnectDirectional(a, b, fwd)
	sim.ConnectDirectional(b, a, rev)
	return nil
}
