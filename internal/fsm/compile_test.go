package fsm

import (
	"testing"

	"protodsl/internal/expr"
)

// shadowSpec declares an event parameter that shares a machine
// variable's name: inside the event's transitions the parameter must win
// (the interpreter's historical args-before-vars resolution order).
func shadowSpec() *Spec {
	return &Spec{
		Name: "Shadow",
		Vars: []Var{
			{Name: "x", Type: expr.TU8, Init: expr.U8(5)},
			{Name: "seen", Type: expr.TU8},
		},
		States: []State{
			{Name: "A", Init: true},
		},
		Events: []Event{
			{Name: "E", Params: []Param{{Name: "x", Type: expr.TU8}}},
			{Name: "PLAIN"},
		},
		Transitions: []Transition{
			{Name: "hit", From: "A", Event: "E", To: "A",
				Guard:   expr.MustParse("x == 7"),
				Assigns: []Assign{{Var: "seen", Expr: expr.MustParse("x")}}},
			{Name: "miss", From: "A", Event: "E", To: "A",
				Guard: expr.MustParse("x != 7")},
			{Name: "plain", From: "A", Event: "PLAIN", To: "A",
				Assigns: []Assign{{Var: "seen", Expr: expr.MustParse("x")}}},
		},
	}
}

func TestCompiledParamShadowsVar(t *testing.T) {
	m, err := NewMachine(shadowSpec())
	if err != nil {
		t.Fatal(err)
	}
	// The guard and the assignment must see the *parameter* x=7, not the
	// variable x=5.
	res, err := m.Step("E", map[string]expr.Value{"x": expr.U8(7)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fired == nil || res.Fired.Name != "hit" {
		t.Fatalf("fired = %v, want hit", res.Fired)
	}
	if seen, _ := m.Var("seen"); seen.AsUint() != 7 {
		t.Errorf("seen = %s, want 7 (parameter value)", seen)
	}
	// The variable x itself must be untouched by parameter binding.
	if x, _ := m.Var("x"); x.AsUint() != 5 {
		t.Errorf("var x = %s, want 5", x)
	}
	// An event without the parameter resolves x to the variable again.
	if _, err := m.Step("PLAIN", nil); err != nil {
		t.Fatal(err)
	}
	if seen, _ := m.Var("seen"); seen.AsUint() != 5 {
		t.Errorf("seen after PLAIN = %s, want 5 (variable value)", seen)
	}
}

func TestProgramReuseAcrossMachines(t *testing.T) {
	prog, err := CompileSpec(shadowSpec())
	if err != nil {
		t.Fatal(err)
	}
	a, b := prog.NewMachine(), prog.NewMachine()
	if _, err := a.Step("E", map[string]expr.Value{"x": expr.U8(7)}); err != nil {
		t.Fatal(err)
	}
	// b is unaffected by a's step: machines share only the immutable
	// program, never frames.
	if seen, _ := b.Var("seen"); seen.AsUint() != 0 {
		t.Errorf("machine b saw machine a's state: seen = %s", seen)
	}
	if a.Steps() != 1 || b.Steps() != 0 {
		t.Errorf("steps: a=%d b=%d, want 1 and 0", a.Steps(), b.Steps())
	}
}

func TestCompileSpecRefusesBrokenSpec(t *testing.T) {
	spec := shadowSpec()
	spec.Transitions[0].Guard = expr.MustParse("x == nosuchvar")
	if _, err := CompileSpec(spec); err == nil {
		t.Fatal("CompileSpec accepted a spec with an unsound guard")
	}
}
