// Command protoverify is the repo's model-checking gate (`make verify`):
// it exhaustively explores every machine spec in examples/specs/ as a
// closed system under all environment stimuli, plus the built-in
// stop-and-wait, Go-Back-N and selective-repeat models over lossy and
// reordering channels, and fails unless each target matches its expected
// verdict. Clean targets must stay clean; seeded-bug and known-unsafe
// configurations must keep violating — a gate that cannot see the seeded
// bug anymore has lost its teeth, so that direction fails too.
//
//	go run ./cmd/protoverify                 # fast gate (CI default)
//	go run ./cmd/protoverify -full           # adds the large GBN flagship config
//	go run ./cmd/protoverify -specs DIR      # override the spec directory
//
// Exit status 0 when every target matches its expected verdict, 1
// otherwise. See DESIGN.md §12 for the search design.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"protodsl/internal/dsl"
	"protodsl/internal/fsm"
	"protodsl/internal/testgen"
	"protodsl/internal/verify"
)

// target is one gate entry: a closed system, its exploration options and
// the verdict it must produce.
type target struct {
	name string
	sys  *verify.System
	opts verify.Options
	// wantViolations: the target models a seeded bug or a known-unsafe
	// configuration and MUST report at least one violation.
	wantViolations bool
	// note explains expected violations in the table output.
	note string
}

// specTargets loads every .pdsl file in dir and closes each machine spec
// over its full stimulus domain: every declared event, with the argument
// candidates testgen enumerates for suite generation. Exhaustive
// exploration then proves every reachable state under arbitrary stimulus
// has well-defined behaviour and a path onward (no deadlock) — the
// model-checking counterpart of the static fsm.Check pass.
func specTargets(dir string) ([]target, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.pdsl"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .pdsl files in %s", dir)
	}
	sort.Strings(files)
	var targets []target
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		proto, reports, err := dsl.Compile(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", filepath.Base(file), err)
		}
		for _, rep := range reports {
			if !rep.OK() {
				return nil, fmt.Errorf("%s: machine %s: %v", filepath.Base(file), rep.Spec, rep.Errors())
			}
		}
		for _, spec := range proto.Machines {
			env, err := envStimuli(spec)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", filepath.Base(file), spec.Name, err)
			}
			targets = append(targets, target{
				name: fmt.Sprintf("spec:%s/%s", filepath.Base(file), spec.Name),
				sys:  &verify.System{Specs: []*fsm.Spec{spec}, Env: env},
				opts: verify.Options{CheckDeadlock: true},
			})
		}
	}
	return targets, nil
}

// envStimuli builds one environment event per declared event, with the
// same argument candidates testgen uses to generate suites.
func envStimuli(spec *fsm.Spec) ([]verify.EnvEvent, error) {
	env := make([]verify.EnvEvent, 0, len(spec.Events))
	for i := range spec.Events {
		args, err := testgen.EnvArgs(spec, &spec.Events[i])
		if err != nil {
			return nil, err
		}
		env = append(env, verify.EnvEvent{Machine: 0, Event: spec.Events[i].Name, Args: args})
	}
	return env, nil
}

// modelTargets is the built-in grid: the stop-and-wait two-machine system
// (E4 axes plus the seeded broken-ack-guard bug), Go-Back-N and
// selective repeat over lossy and reordering channels. Safe/unsafe
// expectations follow the window theorems the checker itself established:
// GBN needs n >= W+1 (and T < n under reordering), SR needs n >= 2W on
// FIFO channels — checked at both W=2 and W=3 — and is unsafe under
// arbitrary reordering for any bounded sequence space (the
// stale-duplicate aliasing that motivates bounded packet lifetimes in
// real transports).
func modelTargets(full bool) ([]target, error) {
	var targets []target
	// No CheckDeadlock for the built-in models: their receivers declare no
	// final state (the model convention — receivers serve forever), so a
	// completed run always reports "not all machines final". Deadlock
	// checking is exercised on the spec-file systems and by the verify
	// package's own tests instead.
	arq := func(o verify.ARQOptions, broken bool) error {
		sys, err := verify.BuildARQ(o)
		if err != nil {
			return err
		}
		t := target{
			name: fmt.Sprintf("arq:n=%d c=%d lossy=%v", o.SeqSpace, o.Capacity, o.Lossy),
			sys:  sys,
			opts: verify.Options{
				Invariants: []verify.Invariant{verify.StopAndWaitInvariant(o.SeqSpace)},
			},
		}
		if broken {
			t.name = fmt.Sprintf("arq:n=%d c=%d broken-ack-guard", o.SeqSpace, o.Capacity)
			t.wantViolations = true
			t.note = "seeded bug"
		}
		targets = append(targets, t)
		return nil
	}
	gbn := func(o verify.GBNOptions, wantViol bool, note string) error {
		sys, err := verify.BuildGBN(o)
		if err != nil {
			return err
		}
		targets = append(targets, target{
			name: fmt.Sprintf("gbn:n=%d w=%d t=%d c=%d lossy=%v reorder=%v",
				o.SeqSpace, o.Window, o.Total, o.Capacity, o.Lossy, o.Reorder),
			sys:            sys,
			opts:           verify.Options{Invariants: []verify.Invariant{verify.GBNInvariant(o.SeqSpace)}},
			wantViolations: wantViol,
			note:           note,
		})
		return nil
	}
	sr := func(o verify.SROptions, wantViol bool, note string) error {
		sys, err := verify.BuildSR(o)
		if err != nil {
			return err
		}
		w := o.Window
		if w == 0 {
			w = 2
		}
		targets = append(targets, target{
			name: fmt.Sprintf("sr:n=%d w=%d t=%d c=%d lossy=%v reorder=%v",
				o.SeqSpace, w, o.Total, o.Capacity, o.Lossy, o.Reorder),
			sys:            sys,
			opts:           verify.Options{Invariants: []verify.Invariant{verify.SRInvariantW(o.SeqSpace, w)}},
			wantViolations: wantViol,
			note:           note,
		})
		return nil
	}
	hs := func(o verify.HSOptions, wantViol bool, note string) error {
		sys, err := verify.BuildHandshake(o)
		if err != nil {
			return err
		}
		mut := ""
		switch o.Mutant {
		case verify.MutantHalfOpenLeak:
			mut = " halfopen-leak"
		case verify.MutantAcceptAnyCookie:
			mut = " accept-any-cookie"
		case verify.MutantNoTimeWait:
			mut = " no-timewait"
		}
		targets = append(targets, target{
			name: fmt.Sprintf("hs:c=%d lossy=%v reorder=%v beats=%v reinc=%v%s",
				o.Capacity, o.Lossy, o.Reorder, o.Beats, o.Reincarnate, mut),
			sys:            sys,
			opts:           verify.Options{Invariants: []verify.Invariant{verify.HSInvariant()}},
			wantViolations: wantViol,
			note:           note,
		})
		return nil
	}
	steps := []func() error{
		func() error { return arq(verify.ARQOptions{SeqSpace: 4, Capacity: 1}, false) },
		func() error { return arq(verify.ARQOptions{SeqSpace: 16, Capacity: 2}, false) },
		func() error { return arq(verify.ARQOptions{SeqSpace: 8, Capacity: 1, Lossy: true}, false) },
		func() error {
			return arq(verify.ARQOptions{SeqSpace: 4, Capacity: 2, BrokenAckGuard: true}, true)
		},
		func() error { return gbn(verify.GBNOptions{SeqSpace: 4, Window: 2, Total: 3, Capacity: 1}, false, "") },
		func() error {
			return gbn(verify.GBNOptions{SeqSpace: 8, Window: 3, Total: 4, Capacity: 2, Lossy: true, Reorder: true}, false, "")
		},
		func() error {
			return gbn(verify.GBNOptions{SeqSpace: 3, Window: 3, Total: 4, Capacity: 2, Lossy: true}, true, "seeded bug: n == W")
		},
		func() error { return sr(verify.SROptions{SeqSpace: 4, Total: 3, Capacity: 2, Lossy: true}, false, "") },
		func() error {
			return sr(verify.SROptions{SeqSpace: 3, Total: 3, Capacity: 2, Lossy: true}, true, "seeded bug: n < 2W")
		},
		func() error {
			return sr(verify.SROptions{SeqSpace: 4, Total: 3, Capacity: 2, Lossy: true, Reorder: true}, true, "unsafe under reordering")
		},
		func() error {
			return sr(verify.SROptions{SeqSpace: 6, Window: 3, Total: 4, Capacity: 2, Lossy: true}, false, "")
		},
		func() error {
			return sr(verify.SROptions{SeqSpace: 5, Window: 3, Total: 4, Capacity: 2, Lossy: true}, true, "seeded bug: n < 2W at W=3")
		},
		func() error { return hs(verify.HSOptions{Capacity: 2, Lossy: true, Reorder: true}, false, "") },
		func() error { return hs(verify.HSOptions{Capacity: 1, Beats: true}, false, "") },
		func() error {
			return hs(verify.HSOptions{Capacity: 2, Reorder: true, Reincarnate: true}, false, "")
		},
		func() error {
			return hs(verify.HSOptions{Capacity: 2, Lossy: true, Mutant: verify.MutantHalfOpenLeak}, true, "seeded bug: SYN allocates state")
		},
		func() error {
			return hs(verify.HSOptions{Capacity: 2, Lossy: true, Mutant: verify.MutantAcceptAnyCookie}, true, "seeded bug: cookie unchecked")
		},
		func() error {
			return hs(verify.HSOptions{Capacity: 2, Reorder: true, Reincarnate: true, Mutant: verify.MutantNoTimeWait}, true, "seeded bug: teardown skips TIME_WAIT")
		},
	}
	if full {
		// The flagship configuration beyond the sequential engine's
		// practical limit: 749,416 states (~34 s at one worker; the
		// sequential engine needs ~185 s). See DESIGN.md §12.
		steps = append(steps, func() error {
			return gbn(verify.GBNOptions{SeqSpace: 16, Window: 6, Total: 10, Capacity: 3, Lossy: true, Reorder: true}, false, "")
		})
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	return targets, nil
}

// run executes the gate and returns the process exit code.
func run(out io.Writer, specDir string, full bool, workers, maxStates int) int {
	targets, err := specTargets(specDir)
	if err != nil {
		fmt.Fprintf(out, "protoverify: %v\n", err)
		return 1
	}
	models, err := modelTargets(full)
	if err != nil {
		fmt.Fprintf(out, "protoverify: %v\n", err)
		return 1
	}
	targets = append(targets, models...)

	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	fmt.Fprintf(out, "protoverify: %d targets, workers=%d\n", len(targets), workers)
	bad := 0
	var totalStates, totalTransitions int
	start := time.Now()
	for _, t := range targets {
		opts := t.opts
		opts.Workers = workers
		opts.MaxStates = maxStates
		res, err := verify.Explore(t.sys, opts)
		if err != nil {
			fmt.Fprintf(out, "  FAIL      %-52s %v\n", t.name, err)
			bad++
			continue
		}
		totalStates += res.States
		totalTransitions += res.Transitions
		detail := fmt.Sprintf("states=%-8d trans=%-9d depth=%-3d %8.0f st/s",
			res.States, res.Transitions, res.Stats.Depth, res.Stats.StatesPerSec)
		switch {
		case res.Truncated:
			fmt.Fprintf(out, "  FAIL      %-52s %s truncated at MaxStates=%d — verdict unreliable\n",
				t.name, detail, opts.MaxStates)
			bad++
		case t.wantViolations && len(res.Violations) == 0:
			fmt.Fprintf(out, "  FAIL      %-52s %s expected violations (%s), found none — gate lost its teeth\n",
				t.name, detail, t.note)
			bad++
		case !t.wantViolations && len(res.Violations) > 0:
			fmt.Fprintf(out, "  FAIL      %-52s %s %d unexpected violation(s)\n", t.name, detail, len(res.Violations))
			for i, v := range res.Violations {
				if i == 3 {
					fmt.Fprintf(out, "            ... and %d more\n", len(res.Violations)-3)
					break
				}
				fmt.Fprintf(out, "            %s\n", v.String())
			}
			bad++
		case t.wantViolations:
			fmt.Fprintf(out, "  expected  %-52s %s %d violation(s): %s\n",
				t.name, detail, len(res.Violations), t.note)
		default:
			fmt.Fprintf(out, "  ok        %-52s %s\n", t.name, detail)
		}
	}
	fmt.Fprintf(out, "protoverify: %d states / %d transitions explored in %v\n",
		totalStates, totalTransitions, time.Since(start).Round(time.Millisecond))
	if bad > 0 {
		fmt.Fprintf(out, "protoverify: %d target(s) failed\n", bad)
		return 1
	}
	fmt.Fprintln(out, "protoverify: all targets match their expected verdicts")
	return 0
}

func main() {
	specDir := flag.String("specs", "examples/specs", "directory of .pdsl specs to model-check")
	full := flag.Bool("full", false, "include the large flagship configuration (~30s on one vCPU)")
	workers := flag.Int("workers", 0, "explorer worker count (0 = NumCPU)")
	maxStates := flag.Int("max-states", 1<<21, "visited-table bound; truncation fails the gate")
	flag.Parse()
	os.Exit(run(os.Stdout, *specDir, *full, *workers, *maxStates))
}
