package ipv4

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"protodsl/internal/wire"
)

// referencePacket is a canonical 20-byte IPv4 header (no options) for
// 192.168.1.1 -> 10.0.0.1, TTL 64, protocol 6 (TCP), total length 40,
// with a correct RFC 1071 header checksum.
func referencePacket(t testing.TB) []byte {
	t.Helper()
	c, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	h := Header{
		Version: 4, IHL: 5, TOS: 0, TotalLength: 40,
		Identification: 0x1c46, Flags: 0x2, FragmentOffset: 0,
		TTL: 64, Protocol: 6,
		Source:      [4]byte{192, 168, 1, 1},
		Destination: [4]byte{10, 0, 0, 1},
	}
	enc, err := c.Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestEncodeKnownHeader(t *testing.T) {
	enc := referencePacket(t)
	if len(enc) != 20 {
		t.Fatalf("header length = %d, want 20", len(enc))
	}
	if enc[0] != 0x45 {
		t.Errorf("first byte = %#x, want 0x45 (version 4, IHL 5)", enc[0])
	}
	// Flags=0b010 (DF), offset 0 -> bytes 6..7 = 0x4000.
	if enc[6] != 0x40 || enc[7] != 0x00 {
		t.Errorf("flags/offset bytes = %#x %#x, want 0x40 0x00", enc[6], enc[7])
	}
	if enc[8] != 64 || enc[9] != 6 {
		t.Errorf("ttl/proto = %d %d", enc[8], enc[9])
	}
	// Verify the checksum is the RFC 1071 sum: recomputing over the
	// header with checksum zeroed must reproduce bytes 10..11.
	zeroed := append([]byte(nil), enc...)
	zeroed[10], zeroed[11] = 0, 0
	var sum uint32
	for i := 0; i < len(zeroed); i += 2 {
		sum += uint32(zeroed[i])<<8 | uint32(zeroed[i+1])
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	want := ^uint16(sum)
	got := uint16(enc[10])<<8 | uint16(enc[11])
	if got != want {
		t.Errorf("checksum = %#x, want %#x", got, want)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	c, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	enc := referencePacket(t)
	checked, rest, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes", len(rest))
	}
	h := checked.Value()
	if h.Version != 4 || h.IHL != 5 || h.TTL != 64 || h.Protocol != 6 {
		t.Errorf("decoded %+v", h)
	}
	if FormatAddr(h.Source) != "192.168.1.1" || FormatAddr(h.Destination) != "10.0.0.1" {
		t.Errorf("addresses %s -> %s", FormatAddr(h.Source), FormatAddr(h.Destination))
	}
	for _, check := range []string{"version-is-4", "ihl-minimum", "total-length-covers-header"} {
		if !checked.Certificate().Establishes(check) {
			t.Errorf("certificate missing %q", check)
		}
	}
}

func TestDecodeWithPayloadAndOptions(t *testing.T) {
	c, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	h := Header{
		Version: 4, IHL: 6, TotalLength: 28,
		TTL: 1, Protocol: 17,
		Source:      [4]byte{127, 0, 0, 1},
		Destination: [4]byte{127, 0, 0, 2},
		Options:     []byte{0x94, 0x04, 0x00, 0x00}, // router alert
	}
	enc, err := c.Encode(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 24 {
		t.Fatalf("header with options = %d bytes, want 24", len(enc))
	}
	payload := []byte{0xDE, 0xAD}
	checked, rest, err := c.Decode(append(enc, payload...))
	if err != nil {
		t.Fatal(err)
	}
	if string(rest) != string(payload) {
		t.Error("payload not returned")
	}
	if got := checked.Value().Options; len(got) != 4 || got[0] != 0x94 {
		t.Errorf("options = %#x", got)
	}
}

func TestDecodeRejections(t *testing.T) {
	c, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	good := referencePacket(t)

	t.Run("short buffer", func(t *testing.T) {
		if _, _, err := c.Decode(good[:19]); !errors.Is(err, wire.ErrShortBuffer) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("corrupted checksum", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[12] ^= 0x01 // flip a source-address bit
		if _, _, err := c.Decode(bad); !errors.Is(err, wire.ErrChecksumMismatch) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 0x65 // version 6
		// Checksum must be fixed up so the semantic check is reached.
		bad[10], bad[11] = 0, 0
		fix := recompute(bad)
		bad[10], bad[11] = byte(fix>>8), byte(fix)
		if _, _, err := c.Decode(bad); !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("bad ihl", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] = 0x44 // IHL 4
		if _, _, err := c.Decode(bad); !errors.Is(err, ErrBadIHL) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("total length too small", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[2], bad[3] = 0, 10
		bad[10], bad[11] = 0, 0
		fix := recompute(bad)
		bad[10], bad[11] = byte(fix>>8), byte(fix)
		if _, _, err := c.Decode(bad); !errors.Is(err, ErrBadTotalLength) {
			t.Errorf("err = %v", err)
		}
	})
}

func recompute(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i < len(hdr); i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

func TestEncodeRejectsInvalidHeaders(t *testing.T) {
	c, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	base := Header{Version: 4, IHL: 5, TotalLength: 20, TTL: 1, Protocol: 6}
	bad := base
	bad.Version = 5
	if _, err := c.Encode(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version err = %v", err)
	}
	bad = base
	bad.IHL = 4
	if _, err := c.Encode(bad); !errors.Is(err, ErrBadIHL) {
		t.Errorf("ihl err = %v", err)
	}
	bad = base
	bad.TotalLength = 19
	if _, err := c.Encode(bad); !errors.Is(err, ErrBadTotalLength) {
		t.Errorf("total length err = %v", err)
	}
	bad = base
	bad.Options = []byte{1, 2, 3, 4} // IHL says none
	if _, err := c.Encode(bad); err == nil {
		t.Error("options/IHL mismatch accepted")
	}
}

// TestFigure1Diagram asserts the regenerated diagram carries the RFC 791
// header rows in Figure 1's 32-bit format.
func TestFigure1Diagram(t *testing.T) {
	d := Diagram()
	for _, want := range []string{
		"version", "ihl", "tos", "total_length",
		"identification", "flags", "fragment_offset",
		"ttl", "protocol", "header_checksum (inet16)",
		"source", "destination",
		" 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("diagram missing %q\n%s", want, d)
		}
	}
	// Exactly the five 32-bit rows of Figure 1 before the options row.
	rows := strings.Count(d, "\n|")
	if rows < 6 {
		t.Errorf("diagram has %d rows, want >= 6\n%s", rows, d)
	}
}

// Property: encode∘decode is the identity on valid headers.
func TestQuickRoundTrip(t *testing.T) {
	c, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	f := func(tos, ttl, proto uint8, id uint16, src, dst [4]byte) bool {
		h := Header{
			Version: 4, IHL: 5, TOS: tos, TotalLength: 20,
			Identification: id, TTL: ttl, Protocol: proto,
			Source: src, Destination: dst,
		}
		enc, err := c.Encode(h)
		if err != nil {
			return false
		}
		checked, rest, err := c.Decode(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		got := checked.Value()
		got.Checksum = 0 // encode input had no checksum
		got.Options = nil
		h.Options = nil
		return got.TOS == h.TOS && got.TTL == h.TTL && got.Protocol == h.Protocol &&
			got.Identification == h.Identification && got.Source == h.Source &&
			got.Destination == h.Destination
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
