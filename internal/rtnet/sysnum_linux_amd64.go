//go:build linux && amd64

package rtnet

// sendmmsg/recvmmsg syscall numbers; the frozen syscall package predates
// sendmmsg on amd64.
const (
	sysRECVMMSG = 299
	sysSENDMMSG = 307
)
