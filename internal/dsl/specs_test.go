package dsl

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSpecFilesMatchCanonicalSources keeps the on-disk .pdsl files under
// examples/specs in sync with the embedded canonical sources that the
// tests, tools and generated code are built from.
func TestSpecFilesMatchCanonicalSources(t *testing.T) {
	for _, tc := range []struct {
		file string
		want string
	}{
		{"arq.pdsl", ARQSource},
		{"ipv4.pdsl", IPv4Source},
		{"handshake.pdsl", HandshakeSource},
	} {
		path := filepath.Join("..", "..", "examples", "specs", tc.file)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if string(got) != tc.want {
			t.Errorf("%s is out of sync with the embedded source", tc.file)
		}
	}
}

// TestIPv4SourceCompiles covers the second canonical source end to end.
func TestIPv4SourceCompiles(t *testing.T) {
	proto, reports, err := Compile(IPv4Source)
	if err != nil {
		t.Fatal(err)
	}
	if proto.Name != "ipv4" || len(proto.MessageOrder) != 1 {
		t.Errorf("proto = %+v", proto)
	}
	if len(reports) != 0 {
		t.Errorf("reports for a machine-less protocol: %d", len(reports))
	}
	m := proto.Messages["IPv4Header"]
	if m == nil || len(m.Fields) != 13 {
		t.Fatalf("fields = %d, want 13", len(m.Fields))
	}
	if m.Fields[0].Bits != 4 || m.Fields[6].Bits != 13 {
		t.Error("bit widths wrong (version u4, fragment_offset u13)")
	}
}
