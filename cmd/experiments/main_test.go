package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes the full harness (the same code path
// that regenerates EXPERIMENTS.md) and sanity-checks each table's
// presence. The repository root is two levels up from this package.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment harness in -short mode")
	}
	var out bytes.Buffer
	if err := run(&ctx{repoRoot: "../.."}, nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"E1: IPv4 header",
		"E2: error-handling",
		"E3: validate-once",
		"E4: static checking vs explicit-state model checking",
		"E5: stop-and-wait ARQ",
		"E6: media-stream adaptation",
		"E7: delivery through untrusted relays",
		"E8: timer policies",
		"E9: automatically constructed behavioural tests",
		"E10a: seeded spec defects",
		"E10b: path-insensitive DFA",
		"E12: adaptive vs fixed RTO",
		"FALSE POSITIVE", // the DFA approximation gap must be visible
	} {
		if !strings.Contains(s, want) {
			t.Errorf("harness output missing %q", want)
		}
	}
	if strings.Contains(s, "FALSE NEGATIVE") {
		t.Error("unexpected false negative in E10")
	}
}

func TestSubsetSelection(t *testing.T) {
	var out bytes.Buffer
	if err := run(&ctx{repoRoot: "../.."}, []string{"e1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E1") || strings.Contains(out.String(), "E5:") {
		t.Error("subset selection broken")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run(&ctx{repoRoot: "../.."}, []string{"e99"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}
