package session

import (
	"bytes"
	"testing"
	"time"

	"protodsl/internal/netsim"
	"protodsl/internal/obs"
)

// FuzzSessionFrame throws hostile bytes at a gate's receive path and
// holds three invariants: no panic, no engine allocation before a valid
// cookie round-trip (the fuzzer cannot mint a MAC under a random
// secret), and full drop accounting — every frame either earns a
// stateless reply (SYN, FIN) or lands in a counter.
func FuzzSessionFrame(f *testing.F) {
	seedCodec, err := NewCodec()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seedCodec.AppendSyn(nil, 1))
	f.Add(seedCodec.AppendSynAck(nil, 1, 2))
	f.Add(seedCodec.AppendAckC(nil, 1, 2))
	f.Add(seedCodec.AppendFin(nil))
	f.Add(seedCodec.AppendFinAck(nil))
	f.Add(seedCodec.AppendBeat(nil, 3))
	f.Add(seedCodec.AppendBeatAck(nil, 3))
	corrupt := seedCodec.AppendAckC(nil, 1, 2)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add([]byte{Magic})
	f.Add([]byte{Magic, byte(KindSyn)})
	f.Add([]byte("ordinary data frame"))
	f.Add(bytes.Repeat([]byte{Magic}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		sim := netsim.New(1)
		cEP, err := sim.NewEndpoint("attacker")
		if err != nil {
			t.Fatal(err)
		}
		sEP, err := sim.NewEndpoint("server")
		if err != nil {
			t.Fatal(err)
		}
		sim.Connect(cEP, sEP, netsim.LinkParams{Delay: time.Millisecond})
		accepts := 0
		gate, err := NewGate(sim, sEP, 3, GateConfig{
			Accept: func(peer netsim.Addr, resume *Resume) *Engine {
				accepts++
				return &Engine{Handle: func(netsim.Addr, []byte) {}}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		replies := 0
		cEP.SetHandler(func(netsim.Addr, []byte) { replies++ })
		oracle, err := NewCodec()
		if err != nil {
			t.Fatal(err)
		}
		k := oracle.Classify(data)

		gate.OnFrame(cEP.Addr(), bytes.Clone(data))
		sim.Run(sim.Now() + time.Second)

		if gate.Peers() != 0 || accepts != 0 {
			t.Fatalf("hostile frame allocated engine state: peers=%d accepts=%d", gate.Peers(), accepts)
		}
		sh := obs.Of(sim)
		drops := sh.Get(obs.DropNoSession) + sh.Get(obs.CookiesRejected)
		switch k {
		case KindSyn, KindFin:
			// Stateless reply, nothing dropped.
			if drops != 0 || replies != 1 {
				t.Fatalf("kind=%v: drops=%d replies=%d, want 0/1", k, drops, replies)
			}
		default:
			// Everything else — forged ACK-C, client-bound control,
			// unknown-peer BEAT, raw data — is a counted drop.
			if drops != 1 || replies != 0 {
				t.Fatalf("kind=%v: drops=%d replies=%d, want 1/0", k, drops, replies)
			}
		}
	})
}
