package verify

// Sharded visited table (DESIGN.md §12). States are identified by their
// canonical byte encoding; the table deduplicates them under striped
// locks with open addressing:
//
//   - fingerprint high bits pick one of 256 shards, each with its own
//     mutex — concurrent inserts rarely contend;
//   - within a shard an open-addressed index maps fingerprints to an
//     append-only meta array (fingerprint, arena offset, parent ref,
//     move index, depth) and an append-only byte arena holding the
//     encodings — one big allocation per shard instead of one per state;
//   - a ref (shard<<32 | meta index) names a state stably across index
//     rehashes, so parent links survive growth.
//
// Lookups compare full encodings on fingerprint match, so a 64-bit
// collision costs a probe, never a wrong dedup. Reads copy under the
// shard lock: concurrent appends may grow the meta and arena slices.

import (
	"bytes"
	"sync"
	"sync/atomic"
)

const tableShards = 256

// ref names a state in the table: shard index in the high 32 bits, meta
// index in the low 32.
type ref uint64

// refNil marks the root's parent.
const refNil = ref(^uint64(0))

func packRef(shard uint64, metaIdx int) ref {
	return ref(shard<<32 | uint64(uint32(metaIdx)))
}

func (r ref) shard() uint64 { return uint64(r) >> 32 }
func (r ref) metaIdx() int  { return int(uint32(r)) }

// nodeMeta is the per-state record: identity plus the parent link the
// trace reconstruction walks.
type nodeMeta struct {
	fp     uint64
	parent ref
	off    uint32 // encoding start in the shard arena
	elen   uint32 // encoding length
	moveID int32  // index into the parent's enabledMoves list (-1 for root)
	depth  int32
}

type tableShard struct {
	mu    sync.Mutex
	idx   []uint32 // open-addressed: metaIdx+1, 0 = empty
	mask  uint64
	meta  []nodeMeta
	arena []byte
}

// table is the concurrent visited set. max bounds the total state count
// across shards (the bounded-memory mode); once reached, inserts report
// full and the table is marked truncated.
type table struct {
	max       int64
	count     atomic.Int64
	truncated atomic.Bool
	shards    [tableShards]tableShard
}

func newTable(max int) *table {
	t := &table{max: int64(max)}
	for i := range t.shards {
		s := &t.shards[i]
		s.idx = make([]uint32, 512)
		s.mask = 511
	}
	return t
}

// insert adds the encoding if unseen. It returns the state's ref,
// whether this call inserted it, and whether the global bound rejected
// it (full implies not inserted and an invalid ref).
func (t *table) insert(fp uint64, enc []byte, parent ref, moveID int32, depth int32) (r ref, isNew bool, full bool) {
	shard := fp >> 56
	s := &t.shards[shard]
	s.mu.Lock()
	i := fp & s.mask
	for {
		slot := s.idx[i]
		if slot == 0 {
			break
		}
		m := &s.meta[slot-1]
		if m.fp == fp && bytes.Equal(s.arena[m.off:m.off+m.elen], enc) {
			r = packRef(shard, int(slot-1))
			s.mu.Unlock()
			return r, false, false
		}
		i = (i + 1) & s.mask
	}
	if t.count.Add(1) > t.max {
		t.count.Add(-1)
		t.truncated.Store(true)
		s.mu.Unlock()
		return refNil, false, true
	}
	off := len(s.arena)
	s.arena = append(s.arena, enc...)
	s.meta = append(s.meta, nodeMeta{
		fp: fp, parent: parent, off: uint32(off), elen: uint32(len(enc)),
		moveID: moveID, depth: depth,
	})
	s.idx[i] = uint32(len(s.meta))
	if uint64(len(s.meta))*4 >= uint64(len(s.idx))*3 {
		s.grow()
	}
	r = packRef(shard, len(s.meta)-1)
	s.mu.Unlock()
	return r, true, false
}

// grow doubles the shard's index and reinserts every meta entry. Refs
// are meta indexes, so they are unaffected.
func (s *tableShard) grow() {
	idx := make([]uint32, len(s.idx)*2)
	mask := uint64(len(idx) - 1)
	for j := range s.meta {
		i := s.meta[j].fp & mask
		for idx[i] != 0 {
			i = (i + 1) & mask
		}
		idx[i] = uint32(j + 1)
	}
	s.idx = idx
	s.mask = mask
}

// node copies the state's encoding into buf[:0] and returns it with the
// meta record.
func (t *table) node(r ref, buf []byte) ([]byte, nodeMeta) {
	s := &t.shards[r.shard()]
	s.mu.Lock()
	m := s.meta[r.metaIdx()]
	buf = append(buf[:0], s.arena[m.off:m.off+m.elen]...)
	s.mu.Unlock()
	return buf, m
}

// metaOf returns the meta record alone.
func (t *table) metaOf(r ref) nodeMeta {
	s := &t.shards[r.shard()]
	s.mu.Lock()
	m := s.meta[r.metaIdx()]
	s.mu.Unlock()
	return m
}

// arenaBytes sums the pooled encoding bytes across shards.
func (t *table) arenaBytes() int {
	total := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		total += len(s.arena)
		s.mu.Unlock()
	}
	return total
}
