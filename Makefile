GO ?= go

.PHONY: all build test bench lint fmt vet fmtcheck clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One iteration per benchmark: a smoke pass that keeps every benchmark
# compiling and runnable without burning CI minutes. Use `make benchfull`
# for real numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

benchfull:
	$(GO) test -run '^$$' -bench . -benchmem ./...

lint: vet fmtcheck

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

clean:
	$(GO) clean ./...
