package expr

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	tests := []struct {
		src  string
		want string // round-trip rendering; "" means same as src
	}{
		{src: "1 + 2"},
		{src: "seq + 1"},
		{src: "p.seq == seq"},
		{src: "a && b || c", want: "(a && b) || c"},
		{src: "a || b && c", want: "a || (b && c)"},
		{src: "1 + 2 * 3", want: "1 + (2 * 3)"},
		{src: "(1 + 2) * 3", want: "(1 + 2) * 3"},
		{src: "len(payload)"},
		{src: "sum8(seq, payload)"},
		{src: "!done"},
		{src: "x << 2"},
		{src: "0x10 + 0b101", want: "16 + 5"},
		{src: "1_000", want: "1000"},
		{src: "u8(300)"},
		{src: "min(a, b)"},
		{src: "p.hdr.flag", want: "p.hdr.flag"},
		{src: `"abc"`},
		{src: "true"},
		{src: "false"},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			e, err := Parse(tt.src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.src, err)
			}
			want := tt.want
			if want == "" {
				want = tt.src
			}
			if got := e.String(); got != want {
				t.Errorf("String() = %q, want %q", got, want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"", "1 +", "(1", "foo(", "1 2", "@", "\"unterminated", "a.", "0x",
		"18446744073709551616", // 2^64: out of range
	}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", src)
			}
		})
	}
}

func testEnv() MapEnv {
	return MapEnv{
		Vars: map[string]Type{
			"seq":     TU8,
			"count":   TU32,
			"done":    TBool,
			"payload": TBytes,
			"name":    TString,
			"p":       TMsg("Packet"),
		},
		Fields: map[string]map[string]Type{
			"Packet": {"seq": TU8, "chk": TU8, "payload": TBytes},
		},
	}
}

func TestCheck(t *testing.T) {
	env := testEnv()
	tests := []struct {
		src  string
		want Type
	}{
		{"seq + 1", TU8},
		{"seq + 256", TU16}, // literal 256 is u16, promotes
		{"count * 2", TU32},
		{"seq == 255", TBool},
		{"seq < count", TBool}, // cross-width comparison allowed
		{"p.seq == seq", TBool},
		{"len(payload)", TU32},
		{"len(name)", TU32},
		{"sum8(seq, payload)", TU8},
		{"u16(seq)", TU16},
		{"done && seq == 0", TBool},
		{"!done", TBool},
		{"-seq", TU8},
		{"min(seq, count)", TU32},
		{"inet16(payload)", TU16},
		{"crc32(payload)", TU32},
		{"seq << 4", TU8},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			got, err := Check(MustParse(tt.src), env)
			if err != nil {
				t.Fatalf("Check(%q): %v", tt.src, err)
			}
			if !got.Equal(tt.want) {
				t.Errorf("Check(%q) = %s, want %s", tt.src, got, tt.want)
			}
		})
	}
}

func TestCheckErrors(t *testing.T) {
	env := testEnv()
	tests := []string{
		"unknown_var",
		"seq + done",
		"done + 1",
		"seq && done",
		"!seq",
		"-done",
		"p.nonexistent",
		"seq.field",   // field access on non-message
		"len(seq)",    // len of uint
		"len()",       // arity
		"nosuchfn(1)", // unknown function
		"payload == seq",
		"payload < payload", // ordering on bytes
		"u8(payload)",
		"sum8(done)",
		"inet16(seq)",
	}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) {
			if _, err := Check(MustParse(src), env); err == nil {
				t.Errorf("Check(%q) succeeded, want error", src)
			}
			var terr *TypeError
			_, err := Check(MustParse(src), env)
			if err != nil && !errors.As(err, &terr) {
				t.Errorf("Check(%q) error is %T, want *TypeError", src, err)
			}
		})
	}
}

func evalScope() MapScope {
	return MapScope{
		"seq":     U8(255),
		"count":   U32(1000),
		"done":    Bool(false),
		"payload": Bytes([]byte{1, 2, 3}),
		"name":    Str("abc"),
		"p":       Msg("Packet", map[string]Value{"seq": U8(7), "chk": U8(9)}),
	}
}

func TestEval(t *testing.T) {
	scope := evalScope()
	tests := []struct {
		src  string
		want Value
	}{
		{"seq + 1", U8(0)},                // 8-bit wrap: the paper's Byte arithmetic
		{"seq + 256", U16(511)},           // promoted to u16: 255+256
		{"count - 1001", U32(0xFFFFFFFF)}, // 32-bit wrap
		{"seq == 255", Bool(true)},
		{"p.seq", U8(7)},
		{"p.seq + 1", U8(8)},
		{"len(payload)", U32(3)},
		{"sum8(payload)", U8(6)},
		{"sum8(seq, payload)", U8((255 + 6) % 256)},
		{"u16(seq) + 1", U16(256)},
		{"done || seq > 100", Bool(true)},
		{"done && 1/0 == 0", Bool(false)}, // short-circuit: no division
		{"min(seq, count)", U32(255)},
		{"max(seq, count)", U32(1000)},
		{"-seq", U8(1)}, // two's complement of 255 at width 8
		{"seq >> 4", U8(15)},
		{"seq & 0x0F", U8(15)},
		{"seq ^ 255", U8(0)},
		{"10 % 3", U8(1)},
		{"u8(300)", U8(44)},
		{`name == "abc"`, Bool(true)},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			got, err := Eval(MustParse(tt.src), scope)
			if err != nil {
				t.Fatalf("Eval(%q): %v", tt.src, err)
			}
			if !got.Equal(tt.want) {
				t.Errorf("Eval(%q) = %s, want %s", tt.src, got, tt.want)
			}
		})
	}
}

func TestEvalDivisionByZero(t *testing.T) {
	for _, src := range []string{"1 / 0", "1 % 0", "seq / (seq - 255)"} {
		_, err := Eval(MustParse(src), evalScope())
		if !errors.Is(err, ErrDivisionByZero) {
			t.Errorf("Eval(%q) err = %v, want ErrDivisionByZero", src, err)
		}
	}
}

func TestEvalUndefinedVariable(t *testing.T) {
	_, err := Eval(MustParse("missing + 1"), MapScope{})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("want undefined-variable error, got %v", err)
	}
}

// Property: checked expressions never fail at evaluation except for
// division by zero — the "free theorem" the paper derives from
// typechecking (§3.1).
func TestCheckedExprsEvaluate(t *testing.T) {
	env := testEnv()
	scope := evalScope()
	exprs := []string{
		"seq + 1", "p.seq == seq", "len(payload) > 0", "sum8(seq, payload)",
		"done || !done", "min(seq, 3) + max(seq, 3)", "u16(seq) << 8",
	}
	for _, src := range exprs {
		e := MustParse(src)
		wantType, err := Check(e, env)
		if err != nil {
			t.Fatalf("Check(%q): %v", src, err)
		}
		v, err := Eval(e, scope)
		if err != nil {
			t.Fatalf("Eval(%q): %v (checked exprs must evaluate)", src, err)
		}
		if v.Kind() != wantType.Kind {
			t.Errorf("Eval(%q) kind %s, Check said %s", src, v.Kind(), wantType.Kind)
		}
	}
}

// Property-based: uint arithmetic wraps exactly like Go's fixed-width
// unsigned arithmetic.
func TestQuickAddWrapsLikeUint8(t *testing.T) {
	f := func(a, b uint8) bool {
		scope := MapScope{"x": U8(uint64(a)), "y": U8(uint64(b))}
		got, err := Eval(MustParse("x + y"), scope)
		return err == nil && got.AsUint() == uint64(a+b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property-based: sub/mul/xor wrap at width 16.
func TestQuickArithmeticWidth16(t *testing.T) {
	ops := map[string]func(a, b uint16) uint16{
		"x - y": func(a, b uint16) uint16 { return a - b },
		"x * y": func(a, b uint16) uint16 { return a * b },
		"x ^ y": func(a, b uint16) uint16 { return a ^ b },
		"x & y": func(a, b uint16) uint16 { return a & b },
		"x | y": func(a, b uint16) uint16 { return a | b },
	}
	for src, ref := range ops {
		e := MustParse(src)
		f := func(a, b uint16) bool {
			scope := MapScope{"x": U16(uint64(a)), "y": U16(uint64(b))}
			got, err := Eval(e, scope)
			return err == nil && got.AsUint() == uint64(ref(a, b))
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

// Property-based: parsing is total and String() of a parsed expression
// reparses to an equal rendering (parse-print-parse fixpoint).
func TestQuickParsePrintFixpoint(t *testing.T) {
	srcs := []string{
		"a + b * c", "a && (b || c)", "len(x) == 3", "p.f1.f2 + 1",
		"sum8(a, b, c)", "!(a < b)", "x << 1 >> 1",
	}
	for _, src := range srcs {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := e1.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", src, printed, err)
		}
		if e2.String() != printed {
			t.Errorf("print-parse-print not stable: %q -> %q -> %q", src, printed, e2.String())
		}
	}
}

func TestInet16KnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d
	// (one's complement of 0xddf2).
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Inet16(data); got != 0x220d {
		t.Errorf("Inet16 = %#x, want 0x220d", got)
	}
	// Odd-length input is padded with a zero byte.
	if got := Inet16([]byte{0xFF}); got != ^uint16(0xFF00) {
		t.Errorf("Inet16 odd = %#x, want %#x", got, ^uint16(0xFF00))
	}
}

func TestValueHashKeyInjective(t *testing.T) {
	vals := []Value{
		Bool(true), Bool(false),
		U8(0), U8(1), U16(1), // widths are part of the key: u8(1) and u16(1) wrap differently
		Bytes([]byte{1}), Bytes([]byte{1, 0}),
		Str("a"), Str("b"),
		Msg("M", map[string]Value{"a": U8(1)}),
		Msg("M", map[string]Value{"a": U8(2)}),
		Msg("N", map[string]Value{"a": U8(1)}),
	}
	seen := make(map[string]Value)
	for _, v := range vals {
		k := v.HashKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("HashKey collision: %s vs %s (key %q)", prev, v, k)
			continue
		}
		seen[k] = v
	}
}

func TestVars(t *testing.T) {
	got := Vars(MustParse("a + p.f + len(b) + min(c, 2)"))
	for _, want := range []string{"a", "p", "b", "c"} {
		if !got[want] {
			t.Errorf("Vars missing %q: %v", want, got)
		}
	}
	if len(got) != 4 {
		t.Errorf("Vars = %v, want exactly {a,p,b,c}", got)
	}
}

func TestBuiltinNamesSorted(t *testing.T) {
	names := BuiltinNames()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("BuiltinNames not sorted: %v", names)
		}
	}
	if len(names) == 0 {
		t.Error("no builtins registered")
	}
}

func TestValueCopySemantics(t *testing.T) {
	src := []byte{1, 2, 3}
	v := Bytes(src)
	src[0] = 99
	if v.RawBytes()[0] != 1 {
		t.Error("Bytes did not copy its input")
	}
	out := v.AsBytes()
	out[0] = 42
	if v.RawBytes()[0] != 1 {
		t.Error("AsBytes did not copy its output")
	}
}
