// Package protodsl is a domain-specific language for defining, checking,
// executing and generating code for network protocols — a Go realisation
// of "Domain Specific Languages (DSLs) for Network Protocols" (Bhatti,
// Brady, Hammond, McKinna; ICDCS 2009).
//
// A protocol definition integrates, in one artefact (§3.2 of the paper):
//
//  1. message structure — bit-level wire layouts with computed lengths
//     and checksums (the role ASCII pictures, ABNF and ASN.1 play today);
//  2. behaviour — states, events and guarded transitions over typed
//     variables;
//  3. execution — an interpreter (and a code generator) that can only
//     run transitions the checked specification declares.
//
// Definitions are "correct by construction": CompileProtocol statically
// verifies soundness (every transition well-formed and well-typed),
// completeness (every state handles or explicitly ignores every event),
// determinism, reachability and liveness, and the execution and
// code-generation layers refuse definitions that fail. Received messages
// are only obtainable as validation witnesses, so unverified data cannot
// reach protocol logic — the paper's ChkPacket discipline.
//
// # Quick start
//
//	proto, reports, err := protodsl.CompileProtocol(src) // src is .pdsl text
//	if err != nil { ... }
//	machine, err := protodsl.NewMachine(proto.Machines[0])
//	res, err := machine.Step("SEND", args)
//
// See examples/quickstart for a complete program, examples/arqfiletransfer
// for the paper's §3.4 ARQ protocol running over a lossy simulated link,
// and DESIGN.md for the full system inventory.
package protodsl

import (
	"protodsl/internal/codegen"
	"protodsl/internal/dsl"
	"protodsl/internal/expr"
	"protodsl/internal/fsm"
	"protodsl/internal/netsim"
	"protodsl/internal/testgen"
	"protodsl/internal/verify"
	"protodsl/internal/wire"
)

// ---- The surface DSL ----

// Protocol is a parsed protocol definition: wire messages plus machines.
type Protocol = dsl.Protocol

// ParseError reports a DSL syntax error with its line number.
type ParseError = dsl.ParseError

// ARQSource is the canonical .pdsl text of the paper's §3.4 stop-and-wait
// ARQ protocol.
const ARQSource = dsl.ARQSource

// ParseProtocol parses .pdsl source without semantic checking.
func ParseProtocol(src string) (*Protocol, error) { return dsl.Parse(src) }

// CompileProtocol parses and statically checks .pdsl source: every
// message must compile to a wire layout and every machine must pass the
// soundness/completeness/determinism/reachability/liveness checks.
// The per-machine check reports are returned for diagnostics.
func CompileProtocol(src string) (*Protocol, []*Report, error) { return dsl.Compile(src) }

// ---- Wire formats ----

// Message is a wire-format message definition.
type Message = wire.Message

// Field is one field of a message.
type Field = wire.Field

// Layout is a compiled, validated message layout.
type Layout = wire.Layout

// CompileMessage validates a message definition and returns its layout.
func CompileMessage(m *Message) (*Layout, error) { return wire.Compile(m) }

// Diagram renders an RFC791-style ASCII picture of the message layout
// (the paper's Figure 1, regenerated from the definition).
func Diagram(m *Message) string { return wire.Diagram(m) }

// ---- Behaviour specifications ----

// Spec is a machine specification: states, events, guarded transitions.
type Spec = fsm.Spec

// Report is the result of statically checking a Spec.
type Report = fsm.Report

// Issue is a single static-check finding.
type Issue = fsm.Issue

// Machine executes a checked Spec (the paper's execTrans interpreter).
type Machine = fsm.Machine

// StepResult describes the effect of delivering one event.
type StepResult = fsm.StepResult

// Check statically verifies a machine specification.
func Check(s *Spec) *Report { return fsm.Check(s) }

// NewMachine checks the spec, compiles it to a Program, and instantiates
// it in its initial state.
func NewMachine(s *Spec) (*Machine, error) { return fsm.NewMachine(s) }

// ---- Compiled execution engine ----

// Program is a compiled machine specification: a flat state×event
// dispatch table of pre-compiled guard/assignment/output closures that
// the interpreter executes directly. Machines returned by NewMachine run
// on a Program; CompileSpec exposes the compilation step so a spec can
// be compiled once and instantiated many times (Program.NewMachine).
type Program = fsm.Program

// CompileSpec checks a machine specification and compiles it into an
// executable Program.
func CompileSpec(s *Spec) (*Program, error) { return fsm.CompileSpec(s) }

// ScopeLayout assigns frame slot indices to expression variables for
// compiled evaluation.
type ScopeLayout = expr.ScopeLayout

// NewScopeLayout returns an empty slot layout.
func NewScopeLayout() *ScopeLayout { return expr.NewScopeLayout() }

// Frame holds the runtime values of a compiled-expression scope.
type Frame = expr.Frame

// CompiledExpr is a compiled expression closure.
type CompiledExpr = expr.Compiled

// ExprNode is a node of the guard/action expression language's AST.
type ExprNode = expr.Expr

// ParseExpr parses expression source text (guards, computed fields).
func ParseExpr(src string) (ExprNode, error) { return expr.Parse(src) }

// CompileExpr lowers a checked expression to a closure over slot-indexed
// frames. Compiled evaluation is observationally identical to the
// tree-walking interpreter but several times faster (no scope-map
// lookups, no per-eval allocations).
func CompileExpr(e ExprNode, layout *ScopeLayout) CompiledExpr { return expr.Compile(e, layout) }

// ---- Values ----

// Value is a runtime value of the expression language (event arguments,
// machine variables, message fields).
type Value = expr.Value

// Value constructors.
var (
	// U8 returns an 8-bit unsigned value.
	U8 = expr.U8
	// U16 returns a 16-bit unsigned value.
	U16 = expr.U16
	// U32 returns a 32-bit unsigned value.
	U32 = expr.U32
	// U64 returns a 64-bit unsigned value.
	U64 = expr.U64
	// BytesValue returns a byte-slice value.
	BytesValue = expr.Bytes
	// BoolValue returns a boolean value.
	BoolValue = expr.Bool
	// MsgValue returns a message value.
	MsgValue = expr.Msg
)

// ---- Code generation ----

// GenerateOptions configures Go code generation.
type GenerateOptions = codegen.Options

// Generate emits Go source for a compiled protocol: typed message
// structs with inline codecs and witness types, plus one struct type per
// machine state with transition methods (invalid transitions are Go
// compile errors).
func Generate(proto *Protocol, opts GenerateOptions) ([]byte, error) {
	return codegen.Generate(proto, opts)
}

// ---- Inline testing (§2.3) ----

// TestSuite is an automatically generated behavioural test suite.
type TestSuite = testgen.Suite

// TestCase is one generated behavioural test.
type TestCase = testgen.Case

// GenerateTests derives a behavioural test suite from a checked spec.
func GenerateTests(s *Spec) (*TestSuite, error) {
	return testgen.Generate(s, testgen.Options{})
}

// RunTests replays a generated suite against a spec.
func RunTests(s *Spec, suite *TestSuite) error { return testgen.Run(s, suite) }

// ---- Model checking (the §3.3 comparison baseline) ----

// System is a closed composition of machines for model checking.
type System = verify.System

// ExploreOptions bounds model-checker exploration.
type ExploreOptions = verify.Options

// ExploreResult summarises an exploration.
type ExploreResult = verify.Result

// Explore runs the explicit-state model checker over a system.
func Explore(sys *System, opts ExploreOptions) (*ExploreResult, error) {
	return verify.Explore(sys, opts)
}

// ---- Network simulation ----

// Sim is the deterministic discrete-event network simulator.
type Sim = netsim.Sim

// LinkParams configures loss, delay, duplication, corruption, reordering
// and bandwidth for one link direction.
type LinkParams = netsim.LinkParams

// Endpoint is a simulator network attachment.
type Endpoint = netsim.Endpoint

// Addr identifies a simulator endpoint.
type Addr = netsim.Addr

// Port is anything a protocol engine can attach to: a simulator
// endpoint, a mux flow, or a real-network (rtnet) flow.
type Port = netsim.Port

// Runtime is the scheduling surface engines run against — virtual time
// (*Sim) or the real clock (an rtnet shard loop). See DESIGN.md §7.
type Runtime = netsim.Runtime

// NewSim creates a simulator seeded for deterministic runs.
func NewSim(seed int64) *Sim { return netsim.New(seed) }
