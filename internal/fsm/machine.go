package fsm

import (
	"errors"
	"fmt"

	"protodsl/internal/expr"
)

// Interpreter errors.
var (
	// ErrInvalidTransition is returned by Step for an event that is
	// neither handled nor ignored in the current state — the dynamic
	// enforcement of the soundness property (generated code enforces the
	// same property at Go compile time).
	ErrInvalidTransition = errors.New("invalid transition")
	// ErrUnknownEvent is returned for events the spec does not declare.
	ErrUnknownEvent = errors.New("unknown event")
	// ErrBadArg is returned when event arguments do not match the event's
	// declared parameters.
	ErrBadArg = errors.New("bad event argument")
)

// OutputMsg is a message emission produced by a fired transition: field
// values ready for wire encoding.
type OutputMsg struct {
	Message string
	Fields  map[string]expr.Value
}

// StepResult describes the effect of one Step call.
type StepResult struct {
	// From and To are the machine states before and after the step.
	From, To string
	// Fired is the transition that fired (nil when Ignored or Rejected).
	Fired *Transition
	// Outputs are the messages emitted by the fired transition.
	Outputs []OutputMsg
	// Ignored is true when the event was declared-ignored in this state.
	Ignored bool
	// Rejected is true when transitions exist for (state, event) but no
	// guard held. Rejection is a *defined* outcome (the receiver in §3.4
	// "will reject a packet" whose sequence number does not match).
	Rejected bool
}

// Machine executes a checked Spec. It is the DSL interpreter — the
// paper's execTrans: only valid transitions can be executed, and every
// step's effect is fully determined by the spec.
//
// Machine is not safe for concurrent use; drive each instance from one
// goroutine (or the deterministic simulator's event loop).
type Machine struct {
	spec  *Spec
	state string
	vars  map[string]expr.Value
	steps uint64
}

// NewMachine checks the spec and instantiates it in its initial state.
// Specs with check errors are refused: execution is only defined for
// specs whose soundness and completeness have been established.
func NewMachine(spec *Spec) (*Machine, error) {
	report := Check(spec)
	if !report.OK() {
		return nil, &CheckSpecError{Report: report}
	}
	return newMachineUnchecked(spec), nil
}

// newMachineUnchecked instantiates without re-running Check. Internal
// callers (the model checker, test generation) use it after checking once.
func newMachineUnchecked(spec *Spec) *Machine {
	vars := make(map[string]expr.Value, len(spec.Vars))
	for _, v := range spec.Vars {
		if v.Init.IsValid() {
			vars[v.Name] = v.Init
		} else {
			vars[v.Name] = zeroValue(v.Type)
		}
	}
	return &Machine{spec: spec, state: spec.InitState(), vars: vars}
}

// NewMachineFromChecked instantiates a machine for a spec already known
// to pass Check; the caller supplies the report as evidence.
func NewMachineFromChecked(spec *Spec, report *Report) (*Machine, error) {
	if report == nil || report.Spec != spec.Name || !report.OK() {
		return nil, fmt.Errorf("spec %s: not accompanied by a passing check report", spec.Name)
	}
	return newMachineUnchecked(spec), nil
}

// Spec returns the machine's specification.
func (m *Machine) Spec() *Spec { return m.spec }

// State returns the current state name.
func (m *Machine) State() string { return m.state }

// InFinal reports whether the machine is in a final state.
func (m *Machine) InFinal() bool {
	st, ok := m.spec.StateByName(m.state)
	return ok && st.Final
}

// Var returns the current value of a machine variable.
func (m *Machine) Var(name string) (expr.Value, bool) {
	v, ok := m.vars[name]
	return v, ok
}

// Vars returns a copy of all machine variables.
func (m *Machine) Vars() map[string]expr.Value {
	out := make(map[string]expr.Value, len(m.vars))
	for k, v := range m.vars {
		out[k] = v
	}
	return out
}

// Steps returns the number of Step calls that fired or ignored an event.
func (m *Machine) Steps() uint64 { return m.steps }

// Clone returns an independent copy of the machine (used by the model
// checker to branch the state space).
func (m *Machine) Clone() *Machine {
	return &Machine{spec: m.spec, state: m.state, vars: m.Vars(), steps: m.steps}
}

// Reset returns the machine to its initial state and variable values.
func (m *Machine) Reset() {
	fresh := newMachineUnchecked(m.spec)
	m.state = fresh.state
	m.vars = fresh.vars
	m.steps = 0
}

// StateKey returns a deterministic hash key of (state, vars) for state-
// space exploration.
func (m *Machine) StateKey() string {
	key := m.state
	for _, v := range m.spec.Vars {
		key += "|" + v.Name + "=" + m.vars[v.Name].HashKey()
	}
	return key
}

// stepScope resolves variables then event arguments.
type stepScope struct {
	vars map[string]expr.Value
	args map[string]expr.Value
}

var _ expr.Scope = stepScope{}

func (s stepScope) VarValue(name string) (expr.Value, bool) {
	if v, ok := s.args[name]; ok {
		return v, ok
	}
	v, ok := s.vars[name]
	return v, ok
}

// Step delivers an event (with arguments bound by parameter name) to the
// machine.
//
// Semantics: the transitions declared for (state, event) are tried in
// declaration order; the first whose guard holds fires. Firing evaluates
// all assignment right-hand sides against the *pre*-state (simultaneous
// assignment), applies them, evaluates outputs, and moves to the target
// state. If no transition is declared and the event is not ignored, Step
// returns ErrInvalidTransition.
func (m *Machine) Step(event string, args map[string]expr.Value) (StepResult, error) {
	ev, ok := m.spec.EventByName(event)
	if !ok {
		return StepResult{}, fmt.Errorf("machine %s: %w: %q", m.spec.Name, ErrUnknownEvent, event)
	}
	if err := m.checkArgs(ev, args); err != nil {
		return StepResult{}, err
	}

	res := StepResult{From: m.state, To: m.state}
	ts := m.spec.TransitionsFrom(m.state, event)
	if len(ts) == 0 {
		if m.spec.Ignored(m.state, event) {
			res.Ignored = true
			m.steps++
			return res, nil
		}
		return StepResult{}, fmt.Errorf("machine %s: %w: event %q in state %q",
			m.spec.Name, ErrInvalidTransition, event, m.state)
	}

	scope := stepScope{vars: m.vars, args: args}
	for _, t := range ts {
		if t.Guard != nil {
			hold, err := expr.EvalBool(t.Guard, scope)
			if err != nil {
				return StepResult{}, fmt.Errorf("machine %s: guard of %s: %w", m.spec.Name, t.String(), err)
			}
			if !hold {
				continue
			}
		}
		return m.fire(t, scope, res)
	}
	res.Rejected = true
	m.steps++
	return res, nil
}

func (m *Machine) fire(t *Transition, scope stepScope, res StepResult) (StepResult, error) {
	// Simultaneous assignment: evaluate all RHS first.
	newVals := make([]expr.Value, len(t.Assigns))
	for i, a := range t.Assigns {
		v, err := expr.Eval(a.Expr, scope)
		if err != nil {
			return StepResult{}, fmt.Errorf("machine %s: assign %s: %w", m.spec.Name, a.Var, err)
		}
		decl, _ := m.spec.VarByName(a.Var)
		newVals[i] = coerce(v, decl.Type)
	}
	// Outputs are evaluated against the pre-state too: they describe the
	// packet being sent *by* this transition.
	for _, o := range t.Outputs {
		fields := make(map[string]expr.Value, len(o.Fields))
		for name, e := range o.Fields {
			v, err := expr.Eval(e, scope)
			if err != nil {
				return StepResult{}, fmt.Errorf("machine %s: output %s field %s: %w",
					m.spec.Name, o.Message, name, err)
			}
			fields[name] = v
		}
		res.Outputs = append(res.Outputs, OutputMsg{Message: o.Message, Fields: fields})
	}
	for i, a := range t.Assigns {
		m.vars[a.Var] = newVals[i]
	}
	m.state = t.To
	m.steps++
	res.To = t.To
	res.Fired = t
	return res, nil
}

func (m *Machine) checkArgs(ev *Event, args map[string]expr.Value) error {
	for _, p := range ev.Params {
		v, ok := args[p.Name]
		if !ok {
			return fmt.Errorf("machine %s: event %s: %w: missing %q",
				m.spec.Name, ev.Name, ErrBadArg, p.Name)
		}
		if !kindMatches(p.Type, v) {
			return fmt.Errorf("machine %s: event %s: %w: %q has kind %s, want %s",
				m.spec.Name, ev.Name, ErrBadArg, p.Name, v.Kind(), p.Type)
		}
	}
	for name := range args {
		found := false
		for _, p := range ev.Params {
			if p.Name == name {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("machine %s: event %s: %w: unexpected argument %q",
				m.spec.Name, ev.Name, ErrBadArg, name)
		}
	}
	return nil
}

func kindMatches(t expr.Type, v expr.Value) bool {
	if t.Kind != v.Kind() {
		return false
	}
	if t.Kind == expr.KindMsg {
		return t.MsgName == v.MsgName()
	}
	return true
}

func coerce(v expr.Value, t expr.Type) expr.Value {
	if t.Kind == expr.KindUint && v.Kind() == expr.KindUint {
		return v.WithBits(t.Bits)
	}
	return v
}
