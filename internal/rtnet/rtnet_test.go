package rtnet

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"protodsl/internal/arq"
	"protodsl/internal/harness"
	"protodsl/internal/netsim"
	"protodsl/internal/obs"
)

// flowPayloads builds distinct per-flow payloads so cross-flow mixups
// cannot cancel out — the same generator the simulated harness and the
// protosim client use.
func flowPayloads(flow, count, size int) [][]byte {
	return harness.DistinctPayloads(flow*7, count, size)
}

type recvKey struct {
	peer netsim.Addr
	flow byte
}

// gbnServer tracks per-(peer,flow) receivers spawned by Serve.
type gbnServer struct {
	mu    sync.Mutex
	recvs map[recvKey]*arq.GBNReceiver
}

func newGBNServer(node *Node) (*gbnServer, error) {
	s := &gbnServer{recvs: make(map[recvKey]*arq.GBNReceiver)}
	err := node.Serve(func(rt netsim.Runtime, port netsim.Port, peer netsim.Addr, flow byte) func(netsim.Addr, []byte) {
		r, err := arq.NewGBNReceiver(port, peer)
		if err != nil {
			return nil
		}
		s.mu.Lock()
		s.recvs[recvKey{peer, flow}] = r
		s.mu.Unlock()
		return r.OnDatagram
	})
	return s, err
}

func (s *gbnServer) receiver(peer netsim.Addr, flow byte) *arq.GBNReceiver {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recvs[recvKey{peer, flow}]
}

const e2eFlows = 64

// TestLoopbackGBN64Flows is the sim-to-real acceptance test: 64
// concurrent go-back-N flows transfer distinct payloads from a client
// node to a server node over real loopback UDP, and every byte arrives
// in order — the same engines, verbatim, that run inside netsim.
func TestLoopbackGBN64Flows(t *testing.T) {
	server, err := Listen("127.0.0.1:0", Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	srv, err := newGBNServer(server)
	if err != nil {
		t.Fatal(err)
	}
	client, err := Listen("127.0.0.1:0", Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	peer, err := client.Dial(string(server.Addr()))
	if err != nil {
		t.Fatal(err)
	}

	const payloadsPerFlow, payloadSize = 30, 256
	cfg := arq.FlowConfig{Window: 32, RTO: 100 * time.Millisecond, MaxRetries: 20}

	type flowState struct {
		sender *arq.GBNSender
		done   chan struct{}
	}
	states := make([]flowState, e2eFlows)
	for id := 0; id < e2eFlows; id++ {
		id := id
		f, err := client.Flow(byte(id))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		var aerr error
		if err := f.Do(func(rt netsim.Runtime, port netsim.Port) {
			states[id].sender, aerr = arq.AttachGBNSender(rt, port, peer, cfg,
				flowPayloads(id, payloadsPerFlow, payloadSize),
				func() { close(done) })
		}); err != nil {
			t.Fatal(err)
		}
		if aerr != nil {
			t.Fatal(aerr)
		}
		states[id].done = done
	}

	deadline := time.After(30 * time.Second)
	for id := range states {
		select {
		case <-states[id].done:
		case <-deadline:
			t.Fatalf("flow %d: transfer did not finish in time", id)
		}
	}

	clientAddr := client.Addr()
	for id := range states {
		if err := states[id].sender.Err(); err != nil {
			t.Fatalf("flow %d: %v", id, err)
		}
		res := states[id].sender.Result()
		if !res.OK {
			t.Fatalf("flow %d: sender gave up (sent %d, retransmits %d)", id, res.PacketsSent, res.Retransmits)
		}
		rcv := srv.receiver(clientAddr, byte(id))
		if rcv == nil {
			t.Fatalf("flow %d: server never spawned a receiver", id)
		}
		var delivered [][]byte
		if err := server.Do(byte(id), func() { delivered = rcv.Delivered() }); err != nil {
			t.Fatal(err)
		}
		expected := flowPayloads(id, payloadsPerFlow, payloadSize)
		if len(delivered) != len(expected) {
			t.Fatalf("flow %d: delivered %d/%d payloads", id, len(delivered), len(expected))
		}
		for i := range expected {
			if !bytes.Equal(delivered[i], expected[i]) {
				t.Fatalf("flow %d: payload %d content mismatch", id, i)
			}
		}
	}
}

// TestLoopbackSR64Flows runs the selective-repeat engine over loopback:
// per-packet timers and the out-of-order receive buffer on the
// real-clock runtime.
func TestLoopbackSR64Flows(t *testing.T) {
	server, err := Listen("127.0.0.1:0", Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	cfg := arq.FlowConfig{Window: 32, RTO: 100 * time.Millisecond, MaxRetries: 20}
	var mu sync.Mutex
	recvs := make(map[recvKey]*arq.SRReceiver)
	err = server.Serve(func(rt netsim.Runtime, port netsim.Port, peer netsim.Addr, flow byte) func(netsim.Addr, []byte) {
		r, err := arq.NewSRReceiver(port, peer, cfg)
		if err != nil {
			return nil
		}
		mu.Lock()
		recvs[recvKey{peer, flow}] = r
		mu.Unlock()
		return r.OnDatagram
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := Listen("127.0.0.1:0", Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	peer, err := client.Dial(string(server.Addr()))
	if err != nil {
		t.Fatal(err)
	}

	const payloadsPerFlow, payloadSize = 20, 256
	senders := make([]*arq.SRSender, e2eFlows)
	dones := make([]chan struct{}, e2eFlows)
	for id := 0; id < e2eFlows; id++ {
		id := id
		f, err := client.Flow(byte(id))
		if err != nil {
			t.Fatal(err)
		}
		dones[id] = make(chan struct{})
		var aerr error
		if err := f.Do(func(rt netsim.Runtime, port netsim.Port) {
			senders[id], aerr = arq.AttachSRSender(rt, port, peer, cfg,
				flowPayloads(id, payloadsPerFlow, payloadSize),
				func() { close(dones[id]) })
		}); err != nil {
			t.Fatal(err)
		}
		if aerr != nil {
			t.Fatal(aerr)
		}
	}

	deadline := time.After(30 * time.Second)
	for id := range dones {
		select {
		case <-dones[id]:
		case <-deadline:
			t.Fatalf("flow %d: transfer did not finish in time", id)
		}
	}
	clientAddr := client.Addr()
	for id := range senders {
		if err := senders[id].Err(); err != nil {
			t.Fatalf("flow %d: %v", id, err)
		}
		if !senders[id].Result().OK {
			t.Fatalf("flow %d: sender gave up", id)
		}
		mu.Lock()
		rcv := recvs[recvKey{clientAddr, byte(id)}]
		mu.Unlock()
		if rcv == nil {
			t.Fatalf("flow %d: no receiver", id)
		}
		var delivered [][]byte
		if err := server.Do(byte(id), func() { delivered = rcv.Delivered() }); err != nil {
			t.Fatal(err)
		}
		expected := flowPayloads(id, payloadsPerFlow, payloadSize)
		if len(delivered) != len(expected) {
			t.Fatalf("flow %d: delivered %d/%d payloads", id, len(delivered), len(expected))
		}
		for i := range expected {
			if !bytes.Equal(delivered[i], expected[i]) {
				t.Fatalf("flow %d: payload %d content mismatch", id, i)
			}
		}
	}
}

// TestMuxFramingHostileBytes feeds the node attacker-controlled
// datagrams straight from a plain UDP socket — truncated frames,
// corrupted mux headers, valid headers with garbage bodies — and
// checks they are counted and dropped without disturbing a live
// transfer.
func TestMuxFramingHostileBytes(t *testing.T) {
	server, err := Listen("127.0.0.1:0", Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	srv, err := newGBNServer(server)
	if err != nil {
		t.Fatal(err)
	}

	attacker, err := net.Dial("udp", string(server.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()

	hostile := [][]byte{
		{},                         // empty datagram
		{0x07},                     // truncated: header cut short
		{0x07, 0x07},               // corrupted header: complement wrong
		{0xff, 0xfe},               // off-by-one complement
		bytes.Repeat([]byte{0}, 3), // header 00/00: complement wrong
	}
	badHeader := 0
	for _, h := range hostile {
		if _, err := attacker.Write(h); err != nil {
			t.Fatal(err)
		}
		if len(h) < 2 || h[1] != ^h[0] {
			badHeader++
		}
	}
	// Valid mux headers with hostile bodies: routed to a flow, then
	// rejected by the arq codec's checksum — never delivered.
	framed := [][]byte{
		{0x03, ^byte(0x03)}, // header only, no body
		append([]byte{0x03, ^byte(0x03)}, bytes.Repeat([]byte{0xaa}, 40)...), // garbage body
		append([]byte{0x05, ^byte(0x05)}, []byte("GET / HTTP/1.1\r\n")...),   // wrong protocol
	}
	for _, h := range framed {
		if _, err := attacker.Write(h); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, 5*time.Second, func() bool { return server.Drops() >= uint64(badHeader) })

	// The aggregate hides the story; the per-reason counters must not.
	// Every hostile datagram above fails the header check — none are
	// oversize and none came from an unspeakable source family.
	if got := server.Obs().Total(obs.DropBadHeader); got < uint64(badHeader) {
		t.Errorf("drop_bad_header = %d, want >= %d", got, badHeader)
	}
	if got := server.Obs().Total(obs.DropOversize); got != 0 {
		t.Errorf("drop_oversize = %d, want 0 (nothing oversize was sent)", got)
	}
	if got := server.Obs().Total(obs.DropBadSource); got != 0 {
		t.Errorf("drop_bad_source = %d, want 0", got)
	}

	// The node must still carry a real transfer afterwards.
	client, err := Listen("127.0.0.1:0", Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	peer, err := client.Dial(string(server.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	f, err := client.Flow(9)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	payloads := flowPayloads(9, 10, 128)
	var sender *arq.GBNSender
	var aerr error
	if err := f.Do(func(rt netsim.Runtime, port netsim.Port) {
		sender, aerr = arq.AttachGBNSender(rt, port, peer,
			arq.FlowConfig{Window: 8, RTO: 100 * time.Millisecond, MaxRetries: 20},
			payloads, func() { close(done) })
	}); err != nil {
		t.Fatal(err)
	}
	if aerr != nil {
		t.Fatal(aerr)
	}
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("transfer did not finish after hostile traffic")
	}
	if !sender.Result().OK {
		t.Fatal("transfer failed after hostile traffic")
	}
	rcv := srv.receiver(client.Addr(), 9)
	if rcv == nil {
		t.Fatal("no receiver spawned")
	}
	var delivered [][]byte
	if err := server.Do(9, func() { delivered = rcv.Delivered() }); err != nil {
		t.Fatal(err)
	}
	if len(delivered) != len(payloads) {
		t.Fatalf("delivered %d/%d after hostile traffic", len(delivered), len(payloads))
	}
}

// TestOversizeDatagramDropped: a datagram larger than MaxPacket is
// truncated by the kernel read; the inner codec's checksum then rejects
// it, so nothing corrupt is ever delivered.
func TestOversizeDatagramDropped(t *testing.T) {
	server, err := Listen("127.0.0.1:0", Config{Shards: 1, MaxPacket: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	delivered := make(chan []byte, 1)
	err = server.Serve(func(rt netsim.Runtime, port netsim.Port, peer netsim.Addr, flow byte) func(netsim.Addr, []byte) {
		return func(from netsim.Addr, data []byte) {
			select {
			case delivered <- append([]byte(nil), data...):
			default:
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := net.Dial("udp", string(server.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	big := make([]byte, 4096)
	big[0], big[1] = 0x01, ^byte(0x01)
	if _, err := attacker.Write(big); err != nil {
		t.Fatal(err)
	}
	// The read buffer is MaxPacket+1 (or the GRO maximum), so the frame
	// arrives longer than MaxPacket and must be counted as an oversize
	// drop — not silently swallowed (the pre-obs behaviour).
	waitFor(t, 5*time.Second, func() bool {
		return server.Obs().Total(obs.DropOversize) >= 1
	})
	select {
	case data := <-delivered:
		if len(data) > 512 {
			t.Fatalf("oversize datagram delivered whole: %d bytes", len(data))
		}
		// Truncated delivery is fine: real engines reject it by checksum.
	case <-time.After(500 * time.Millisecond):
	}
}

// TestSendSideDropsCounted: frames the node refuses to put on the wire
// historically vanished without a trace (engines ignore Send errors, as
// the simulator's Send cannot fail this way). Each refusal must now
// land in its own drop-reason counter and surface through SendErrors.
func TestSendSideDropsCounted(t *testing.T) {
	node, err := Listen("127.0.0.1:0", Config{Shards: 1, MaxPacket: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	f, err := node.Flow(1)
	if err != nil {
		t.Fatal(err)
	}

	// Oversize: rejected at staging, synchronously.
	sendErr := make(chan error, 1)
	if err := f.Do(func(rt netsim.Runtime, port netsim.Port) {
		sendErr <- port.Send(node.Addr(), make([]byte, 1024))
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-sendErr; err == nil {
		t.Error("oversize send returned nil error")
	}
	if got := node.Obs().Total(obs.DropSendOversize); got != 1 {
		t.Errorf("drop_send_oversize = %d, want 1", got)
	}

	// Family mismatch: a v6 destination parses and stages fine on a v4
	// socket; the kernel-facing sender refuses it at flush time, where
	// only the counter can tell the story.
	if err := f.Do(func(rt netsim.Runtime, port netsim.Port) {
		sendErr <- port.Send(netsim.Addr("[::1]:9"), []byte("x"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-sendErr; err != nil {
		t.Fatalf("staging a v6 destination failed early: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return node.Obs().Total(obs.DropSendFamily) >= 1
	})
	if node.SendErrors() == 0 {
		t.Error("SendErrors() = 0 after a family-mismatch drop")
	}
}

// TestLoopTimersCancelReallyCancels pins the PR 2 guarantee on the
// real-clock loop: a cancelled timer never fires, even when cancelled
// from a timer callback at the same wakeup.
func TestLoopTimersCancelReallyCancels(t *testing.T) {
	node, err := Listen("127.0.0.1:0", Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	f, err := node.Flow(0)
	if err != nil {
		t.Fatal(err)
	}

	fired := make(chan string, 8)
	if err := f.Do(func(rt netsim.Runtime, port netsim.Port) {
		doomed := rt.After(5*time.Millisecond, func() { fired <- "doomed" })
		doomed.Cancel()
		if doomed.Active() {
			t.Error("cancelled timer still active")
		}
		var victim netsim.Timer
		rt.After(3*time.Millisecond, func() {
			victim.Cancel()
			fired <- "canceller"
		})
		victim = rt.After(10*time.Millisecond, func() { fired <- "victim" })
		rt.After(20*time.Millisecond, func() { fired <- "sentinel" })
	}); err != nil {
		t.Fatal(err)
	}

	var got []string
	deadline := time.After(5 * time.Second)
loop:
	for {
		select {
		case s := <-fired:
			got = append(got, s)
			if s == "sentinel" {
				break loop
			}
		case <-deadline:
			t.Fatalf("sentinel never fired; got %v", got)
		}
	}
	for _, s := range got {
		if s == "doomed" || s == "victim" {
			t.Fatalf("cancelled timer %q fired (sequence %v)", s, got)
		}
	}
}

// TestFlowClaiming: claiming a flow twice fails; claims and Serve
// coexist.
func TestFlowClaiming(t *testing.T) {
	node, err := Listen("127.0.0.1:0", Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if _, err := node.Flow(7); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Flow(7); err == nil {
		t.Fatal("double-claiming flow 7 succeeded")
	}
	if err := node.Serve(func(rt netsim.Runtime, port netsim.Port, peer netsim.Addr, flow byte) func(netsim.Addr, []byte) {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCloseIdempotent: Close twice, and operations after Close fail
// cleanly.
func TestCloseIdempotent(t *testing.T) {
	node, err := Listen("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Do(0, func() {}); err == nil {
		t.Fatal("Do succeeded on a closed node")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func Example() {
	// Serve echoes on every flow; a client ping-pongs once.
	server, _ := Listen("127.0.0.1:0", Config{Shards: 1})
	defer server.Close()
	_ = server.Serve(func(rt netsim.Runtime, port netsim.Port, peer netsim.Addr, flow byte) func(netsim.Addr, []byte) {
		return func(from netsim.Addr, data []byte) { _ = port.Send(from, data) }
	})
	client, _ := Listen("127.0.0.1:0", Config{Shards: 1})
	defer client.Close()
	peer, _ := client.Dial(string(server.Addr()))
	f, _ := client.Flow(1)
	echoed := make(chan int, 1)
	_ = f.Do(func(rt netsim.Runtime, port netsim.Port) {
		port.SetHandler(func(from netsim.Addr, data []byte) { echoed <- len(data) })
		_ = port.Send(peer, []byte("ping"))
	})
	fmt.Println(<-echoed, "bytes echoed")
	// Output: 4 bytes echoed
}

// TestServePeerCap: a served flow stops spawning engines once
// MaxPeersPerFlow distinct sources have contacted it — the bound that
// keeps spoofed-source sweeps from growing server memory.
func TestServePeerCap(t *testing.T) {
	server, err := Listen("127.0.0.1:0", Config{Shards: 1, MaxPeersPerFlow: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	var spawned atomic.Int64
	err = server.Serve(func(rt netsim.Runtime, port netsim.Port, peer netsim.Addr, flow byte) func(netsim.Addr, []byte) {
		spawned.Add(1)
		return func(from netsim.Addr, data []byte) {}
	})
	if err != nil {
		t.Fatal(err)
	}
	frame := []byte{0x01, ^byte(0x01), 0xde, 0xad}
	for i := 0; i < 6; i++ {
		c, err := net.Dial("udp", string(server.Addr()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write(frame); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	waitFor(t, 5*time.Second, func() bool { return spawned.Load() >= 2 })
	time.Sleep(50 * time.Millisecond) // let any over-cap spawns surface
	if got := spawned.Load(); got > 2 {
		t.Fatalf("spawned %d engines for flow 1; cap is 2", got)
	}
}
