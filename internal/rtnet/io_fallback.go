//go:build !linux || !(amd64 || arm64)

// Portable packet I/O: no burst reads (the blocking read in the reader
// loop carries everything), per-packet writes via the net package, no
// SO_REUSEPORT socket groups (a Node keeps one socket shared by all
// shards) and no UDP GSO/GRO coalescing. Still allocation-free in
// steady state — WriteToUDPAddrPort takes the destination by value —
// just more syscalls than the Linux fast paths.

package rtnet

import (
	"errors"
	"net/netip"
	"syscall"

	"protodsl/internal/obs"
)

// reusePortSupported: per-shard sockets sharing one port need
// SO_REUSEPORT; without it the Node falls back to one shared socket.
const reusePortSupported = false

func setReusePort(c syscall.RawConn) error {
	return errors.New("rtnet: SO_REUSEPORT unsupported on this platform")
}

func probeGSO(raw syscall.RawConn) bool { return false }

func enableGRO(raw syscall.RawConn) bool { return false }

func parseGROCmsg(oob []byte) int { return 0 }

type burstReader struct{}

func newBurstReader(batchSize, maxPacket int) *burstReader { return &burstReader{} }

// capacity returns 0: no burst path on this platform.
func (r *burstReader) capacity() int { return 0 }

// read reports no burst datagrams: the platform has no non-blocking
// batched receive, so the blocking read path handles everything.
func (r *burstReader) read(raw syscall.RawConn) int { return 0 }

func (r *burstReader) packet(i int) ([]byte, netip.AddrPort, int) {
	panic("rtnet: burst reads unavailable on this platform")
}

type burstSender struct{}

func newBurstSender(batchSize int) *burstSender { return &burstSender{} }

// send writes each staged packet individually on the shard's socket,
// counting undeliverable packets by reason. The explicit family
// pre-check matters here: without it a v6 destination on a v4 socket
// surfaces as a generic write error and the family mismatch vanishes
// into the catch-all counter.
func (s *burstSender) send(sh *Shard, out []outPkt, buf []byte) {
	for i := range out {
		p := &out[i]
		if !sh.node.v6 && !p.to.Addr().Is4() && !p.to.Addr().Is4In6() {
			sh.obs.Inc(obs.DropSendFamily)
			continue
		}
		if _, err := sh.conn.WriteToUDPAddrPort(buf[p.off:p.end], p.to); err != nil {
			sh.obs.Inc(obs.DropSendError)
		}
	}
}
