package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSectionsParsesHeadings(t *testing.T) {
	design := "# DESIGN\n\n## §1 — Overview\n\ntext\n\n## §2 — Mapping\n\n### not-a-section §9\n\n## §7 — Runtime\n"
	got := sections(design)
	for _, want := range []int{1, 2, 7} {
		if !got[want] {
			t.Errorf("section §%d not found", want)
		}
	}
	if got[9] {
		t.Error("### heading counted as a section")
	}
}

func TestCheckFlagsDanglingReference(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("DESIGN.md", "## §1 — A\n\n## §2 — B\n")
	write("pkg/ok.go", "package pkg\n\n// fine: see DESIGN.md §2 for details.\n")
	write("pkg/bad.go", "package pkg\n\n// dangling: DESIGN.md §6 does not exist here.\n")
	problems, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 {
		t.Fatalf("want exactly the §6 problem, got %v", problems)
	}
}

func TestCheckErrorsWithoutDesign(t *testing.T) {
	dir := t.TempDir()
	if _, err := check(dir); err == nil {
		t.Fatal("missing DESIGN.md accepted")
	}
}

// TestRepositoryReferencesResolve runs the real check over the real
// repository: the CI docs job in test form.
func TestRepositoryReferencesResolve(t *testing.T) {
	root := "../../.." // internal/tools/docscheck -> repo root
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("repo root not found: %v", err)
	}
	problems, err := check(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}
