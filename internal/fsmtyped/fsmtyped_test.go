package fsmtyped

import (
	"errors"
	"testing"
)

type stIdle struct{ N int }
type stBusy struct{ N int }
type stDone struct{ N int }

func (stIdle) StateName() string { return "Idle" }
func (stBusy) StateName() string { return "Busy" }
func (stDone) StateName() string { return "Done" }

func start() Transition[stIdle, stBusy] {
	return func(s stIdle) (stBusy, error) { return stBusy{N: s.N + 1}, nil }
}

func finish() Transition[stBusy, stDone] {
	return func(s stBusy) (stDone, error) { return stDone{N: s.N}, nil }
}

func failing() Transition[stBusy, stDone] {
	return func(stBusy) (stDone, error) { return stDone{}, errors.New("boom") }
}

func TestExecChainsTypedTransitions(t *testing.T) {
	var log Log
	busy, err := Exec(&log, "start", stIdle{N: 1}, start())
	if err != nil {
		t.Fatal(err)
	}
	done, err := Exec(&log, "finish", busy, finish())
	if err != nil {
		t.Fatal(err)
	}
	if done.N != 2 {
		t.Errorf("N = %d, want 2", done.N)
	}
	entries := log.Entries()
	if len(entries) != 2 || log.Len() != 2 {
		t.Fatalf("log = %v", entries)
	}
	if entries[0].Name != "start" || entries[0].From != "Idle" || entries[0].To != "Busy" {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[1].String() != "finish: Busy -> Done" {
		t.Errorf("entry 1 renders %q", entries[1].String())
	}

	// The compile-time guarantee: the following do not type-check.
	//	Exec(&log, "bad", stIdle{}, finish())  // finish needs stBusy
	//	Exec(&log, "bad", done, start())       // start needs stIdle
}

func TestExecRecordsFailure(t *testing.T) {
	var log Log
	_, err := Exec(&log, "failing", stBusy{}, failing())
	if err == nil {
		t.Fatal("want error")
	}
	entries := log.Entries()
	if len(entries) != 1 || !entries[0].Err || entries[0].To != "" {
		t.Errorf("entries = %v", entries)
	}
	if entries[0].String() != "failing: Busy -> (failed)" {
		t.Errorf("renders %q", entries[0].String())
	}
}

func TestExecNilLog(t *testing.T) {
	busy, err := Exec[stIdle, stBusy](nil, "start", stIdle{N: 5}, start())
	if err != nil {
		t.Fatal(err)
	}
	if busy.N != 6 {
		t.Errorf("N = %d", busy.N)
	}
}

func TestLogEntriesIsCopy(t *testing.T) {
	var log Log
	if _, err := Exec(&log, "start", stIdle{}, start()); err != nil {
		t.Fatal(err)
	}
	entries := log.Entries()
	entries[0].Name = "tampered"
	if log.Entries()[0].Name != "start" {
		t.Error("Entries exposed internals")
	}
}
