package protodsl

import (
	"strings"
	"testing"
	"time"
)

// TestFacadeEndToEnd exercises the public API exactly as README's
// quickstart describes: compile the paper's protocol, run a machine,
// derive tests, generate code, run a transfer.
func TestFacadeEndToEnd(t *testing.T) {
	proto, reports, err := CompileProtocol(ARQSource)
	if err != nil {
		t.Fatal(err)
	}
	if proto.Name != "arq" || len(reports) != 2 {
		t.Fatalf("proto=%q reports=%d", proto.Name, len(reports))
	}

	// Run the sender machine through one round trip.
	machine, err := NewMachine(proto.Machines[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Step("SEND", map[string]Value{"data": BytesValue([]byte("x"))})
	if err != nil {
		t.Fatal(err)
	}
	if res.To != "Wait" {
		t.Fatalf("SEND -> %s", res.To)
	}
	ack := MsgValue("Ack", map[string]Value{"seq": U8(0), "chk": U8(0)})
	if _, err := machine.Step("OK", map[string]Value{"ack": ack}); err != nil {
		t.Fatal(err)
	}

	// Wire layer.
	layout, err := CompileMessage(proto.Messages["Packet"])
	if err != nil {
		t.Fatal(err)
	}
	enc, err := layout.Encode(map[string]Value{"seq": U8(1), "payload": BytesValue([]byte("hi"))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := layout.Decode(enc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Diagram(proto.Messages["Packet"]), "chk (sum8)") {
		t.Error("diagram missing checksum annotation")
	}

	// Static checking is exposed directly too.
	if rep := Check(proto.Machines[1]); !rep.OK() {
		t.Errorf("receiver check: %v", rep.Errors())
	}

	// Inline tests.
	suite, err := GenerateTests(proto.Machines[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := RunTests(proto.Machines[0], suite); err != nil {
		t.Fatal(err)
	}
	if suite.Coverage() != 1.0 {
		t.Errorf("coverage %.2f", suite.Coverage())
	}

	// Codegen.
	code, err := Generate(proto, GenerateOptions{Package: "arqgen"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(code), "package arqgen") {
		t.Error("generated code missing package clause")
	}
}

func TestFacadeTransferAndSim(t *testing.T) {
	payloads := [][]byte{{1}, {2}, {3}}
	res, err := RunARQTransfer(ARQConfig{
		Seed: 1,
		Link: LinkParams{Delay: time.Millisecond, LossProb: 0.2},
		RTO:  10 * time.Millisecond, MaxRetries: 30,
	}, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || len(res.Delivered) != 3 {
		t.Fatalf("ok=%v delivered=%d", res.OK, len(res.Delivered))
	}

	gres, err := RunGBNTransfer(GBNConfig{
		Seed: 1, Window: 4,
		Link: LinkParams{Delay: time.Millisecond},
	}, payloads)
	if err != nil || !gres.OK {
		t.Fatalf("gbn: %v ok=%v", err, gres.OK)
	}

	// Raw simulator access.
	sim := NewSim(7)
	a, err := sim.NewEndpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.NewEndpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	sim.Connect(a, b, LinkParams{Delay: time.Millisecond})
	got := 0
	b.SetHandler(func(Addr, []byte) { got++ })
	if err := a.Send(b.Addr(), []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("delivered %d", got)
	}
}

func TestFacadeModelCheck(t *testing.T) {
	// Compose a one-machine system from the DSL and explore it.
	proto, _, err := CompileProtocol(ARQSource)
	if err != nil {
		t.Fatal(err)
	}
	receiver, ok := proto.Machine("Receiver")
	if !ok {
		t.Fatal("no Receiver")
	}
	// The two-machine ARQ system is exercised in internal/verify; here
	// just confirm the facade plumbs Explore through: with no stimuli the
	// receiver alone has exactly its initial state.
	res, err := Explore(&System{Specs: []*Spec{receiver}}, ExploreOptions{MaxStates: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.States != 1 {
		t.Errorf("states = %d, want 1 (no stimuli)", res.States)
	}
}

func TestFacadeBehaviourHooks(t *testing.T) {
	ctrl, err := NewRateController(10, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateStream(SteppedCapacity([]float64{80, 20}, 10), FuzzySender{Controller: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 20 {
		t.Errorf("steps = %d", len(res.Steps))
	}

	tres, err := RunTrustRouting(TrustConfig{
		Relays: 4, AdversarialFraction: 0.5, Strategy: TrustStrategyLearn,
		Messages: 50, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tres.Attempts != 50 {
		t.Errorf("attempts = %d", tres.Attempts)
	}

	est, err := NewRTOEstimator(time.Second, time.Millisecond, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	est.Observe(20 * time.Millisecond)
	if est.RTO() <= 0 {
		t.Error("RTO not positive")
	}

	codec, err := NewIPv4Codec()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := codec.Encode(IPv4Header{
		Version: 4, IHL: 5, TotalLength: 20, TTL: 1, Protocol: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 20 {
		t.Errorf("header = %d bytes", len(enc))
	}
	if !strings.Contains(IPv4Diagram(), "header_checksum") {
		t.Error("diagram broken")
	}
}

func TestFacadeParseErrors(t *testing.T) {
	if _, err := ParseProtocol("not a protocol"); err == nil {
		t.Error("junk accepted")
	}
	_, _, err := CompileProtocol(`protocol p {
	machine M {
		init state A
		event GO
		on GO from A to Missing
	}
}`)
	if err == nil {
		t.Error("unsound protocol compiled")
	}
}
