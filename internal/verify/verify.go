// Package verify is an explicit-state model checker for systems of fsm
// machines connected by bounded channels.
//
// It exists as the paper's comparison baseline (§3.3): "The state machine
// representing a protocol may have a large number of states and
// transitions. Verifying the protocol requires exploring the entire state
// space." This checker does exactly that — breadth-first exploration of
// the product state space with invariant checking, deadlock detection and
// counter-example traces — so experiment E4 can measure how its cost
// scales with sequence-number space and channel capacity, against the
// near-constant cost of the spec-level static checks (fsm.Check) the DSL
// approach uses instead.
//
// Each Check call owns its worklist and visited set, so concurrent
// checks — even of the same system — are safe.
package verify

import (
	"errors"
	"fmt"
	"strings"

	"protodsl/internal/expr"
	"protodsl/internal/fsm"
)

// Route connects one machine's output messages to another machine's
// input event through a bounded (optionally lossy) FIFO channel.
type Route struct {
	// From is the index of the producing machine; Message selects which
	// of its outputs travel this route.
	From    int
	Message string
	// To is the consuming machine; the message is delivered as Event with
	// the message value bound to parameter Param.
	To    int
	Event string
	Param string
	// Capacity bounds the in-flight messages; sends into a full channel
	// silently drop the oldest (modelling overrun).
	Capacity int
	// Lossy adds a nondeterministic drop move for the channel head.
	Lossy bool
}

// EnvEvent declares an environment stimulus: an event the surrounding
// world may raise at any time (timeouts, application sends), with a
// finite set of argument bindings to keep the state space enumerable.
type EnvEvent struct {
	Machine int
	Event   string
	// Args lists alternative argument bindings; nil or empty means the
	// event is raised once with no arguments.
	Args []map[string]expr.Value
}

// System is a closed composition of machines, routes and stimuli.
type System struct {
	Specs  []*fsm.Spec
	Routes []Route
	Env    []EnvEvent
}

// Snapshot is the observable global state handed to invariants.
type Snapshot struct {
	// States holds each machine's current state name.
	States []string
	// Vars holds each machine's variable values.
	Vars []map[string]expr.Value
	// Queues holds the message values in flight on each route.
	Queues [][]expr.Value
}

// Invariant is a named safety property over global states.
type Invariant struct {
	Name string
	Fn   func(*Snapshot) error
}

// Violation kinds.
const (
	ViolationInvariant = "invariant"
	ViolationDeadlock  = "deadlock"
	ViolationStep      = "step-error"
)

// Violation reports a property failure with a counter-example trace.
type Violation struct {
	Kind  string
	Name  string
	Msg   string
	Trace []string // move descriptions from the initial state
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s %s: %s (trace: %s)", v.Kind, v.Name, v.Msg, strings.Join(v.Trace, " ; "))
}

// Options bounds and configures exploration.
type Options struct {
	// MaxStates bounds distinct states explored (0 = 1<<20).
	MaxStates int
	// Invariants are checked in every reached state.
	Invariants []Invariant
	// CheckDeadlock reports states with no enabled moves where not every
	// machine is final.
	CheckDeadlock bool
	// StopAtFirstViolation ends exploration at the first finding.
	StopAtFirstViolation bool
}

// Result summarises an exploration.
type Result struct {
	// States is the number of distinct global states reached.
	States int
	// Transitions is the number of moves executed.
	Transitions int
	// Violations found (empty means the explored space satisfies all
	// properties).
	Violations []Violation
	// Truncated is true when MaxStates stopped exploration early — the
	// paper's point: "the model may be a simplified (and so unrealistic)
	// representation".
	Truncated bool
}

// node is one explored global state.
type node struct {
	machines []*fsm.Machine
	queues   [][]expr.Value
	key      string
	parent   string
	move     string
}

// Explore runs breadth-first search over the system's product state
// space. Specs are checked first; a spec that fails fsm.Check is refused
// (the model checker verifies *checked* specs against system-level
// properties the static checker cannot see).
func Explore(sys *System, opts Options) (*Result, error) {
	if len(sys.Specs) == 0 {
		return nil, errors.New("verify: system has no machines")
	}
	for _, spec := range sys.Specs {
		if report := fsm.Check(spec); !report.OK() {
			return nil, &fsm.CheckSpecError{Report: report}
		}
	}
	for _, r := range sys.Routes {
		if r.From < 0 || r.From >= len(sys.Specs) || r.To < 0 || r.To >= len(sys.Specs) {
			return nil, fmt.Errorf("verify: route references machine out of range: %+v", r)
		}
		if r.Capacity < 1 {
			return nil, fmt.Errorf("verify: route %s needs capacity >= 1", r.Message)
		}
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 1 << 20
	}

	machines := make([]*fsm.Machine, len(sys.Specs))
	for i, spec := range sys.Specs {
		m, err := fsm.NewMachine(spec)
		if err != nil {
			return nil, err
		}
		machines[i] = m
	}
	initial := &node{
		machines: machines,
		queues:   make([][]expr.Value, len(sys.Routes)),
	}
	initial.key = globalKey(initial)

	e := &explorer{sys: sys, opts: opts, res: &Result{}}
	e.visited = map[string]visitedInfo{initial.key: {}}
	e.checkState(initial)
	queue := []*node{initial}
	e.res.States = 1

	for len(queue) > 0 && !(opts.StopAtFirstViolation && len(e.res.Violations) > 0) {
		cur := queue[0]
		queue = queue[1:]
		moves := e.enabledMoves(cur)
		productive := false
		for _, mv := range moves {
			next, err := e.apply(cur, mv)
			if err != nil {
				e.violate(cur, Violation{
					Kind: ViolationStep, Name: mv.describe(), Msg: err.Error(),
				})
				continue
			}
			e.res.Transitions++
			if next == nil {
				continue // no-op move (ignored/rejected event)
			}
			productive = true
			if _, seen := e.visited[next.key]; seen {
				continue
			}
			if e.res.States >= opts.MaxStates {
				e.res.Truncated = true
				continue
			}
			e.visited[next.key] = visitedInfo{parent: cur.key, move: mv.describe()}
			e.res.States++
			e.checkState(next)
			queue = append(queue, next)
		}
		// Deadlock: the state can never change again (every move — if any —
		// is a no-op) and the system has not terminated cleanly.
		if opts.CheckDeadlock && !productive && !allFinal(cur.machines) {
			e.violate(cur, Violation{
				Kind: ViolationDeadlock, Name: "deadlock",
				Msg: "no state-changing moves and not all machines final",
			})
		}
	}
	return e.res, nil
}

type visitedInfo struct {
	parent string
	move   string
}

type explorer struct {
	sys     *System
	opts    Options
	res     *Result
	visited map[string]visitedInfo
}

// move is one nondeterministic choice: an environment event, a channel
// delivery, or a lossy drop.
type move struct {
	kind    moveKind
	machine int
	event   string
	args    map[string]expr.Value
	argIdx  int
	route   int
}

type moveKind int

const (
	moveEnv moveKind = iota + 1
	moveDeliver
	moveDrop
)

func (m move) describe() string {
	switch m.kind {
	case moveEnv:
		return fmt.Sprintf("env:%d.%s[%d]", m.machine, m.event, m.argIdx)
	case moveDeliver:
		return fmt.Sprintf("deliver:route%d", m.route)
	case moveDrop:
		return fmt.Sprintf("drop:route%d", m.route)
	default:
		return "?"
	}
}

// enabledMoves enumerates the nondeterministic choices in a state.
func (e *explorer) enabledMoves(n *node) []move {
	var moves []move
	for _, env := range e.sys.Env {
		m := n.machines[env.Machine]
		if len(m.Spec().TransitionsFrom(m.State(), env.Event)) == 0 &&
			!m.Spec().Ignored(m.State(), env.Event) {
			continue // event not executable here
		}
		argSets := env.Args
		if len(argSets) == 0 {
			argSets = []map[string]expr.Value{nil}
		}
		for i, args := range argSets {
			moves = append(moves, move{
				kind: moveEnv, machine: env.Machine, event: env.Event, args: args, argIdx: i,
			})
		}
	}
	for ri, r := range e.sys.Routes {
		if len(n.queues[ri]) == 0 {
			continue
		}
		dst := n.machines[r.To]
		if len(dst.Spec().TransitionsFrom(dst.State(), r.Event)) > 0 ||
			dst.Spec().Ignored(dst.State(), r.Event) {
			moves = append(moves, move{kind: moveDeliver, route: ri})
		}
		if r.Lossy {
			moves = append(moves, move{kind: moveDrop, route: ri})
		}
	}
	return moves
}

// apply executes a move on a copy of the state. It returns nil (and no
// error) when the move is a semantic no-op that cannot change the state.
func (e *explorer) apply(n *node, mv move) (*node, error) {
	next := cloneNode(n)
	switch mv.kind {
	case moveEnv:
		res, err := next.machines[mv.machine].Step(mv.event, mv.args)
		if err != nil {
			return nil, err
		}
		if res.Ignored || res.Rejected {
			return nil, nil
		}
		e.routeOutputs(next, mv.machine, res.Outputs)
	case moveDeliver:
		r := e.sys.Routes[mv.route]
		msg := next.queues[mv.route][0]
		next.queues[mv.route] = append([]expr.Value(nil), next.queues[mv.route][1:]...)
		res, err := next.machines[r.To].Step(r.Event, map[string]expr.Value{r.Param: msg})
		if err != nil {
			return nil, err
		}
		e.routeOutputs(next, r.To, res.Outputs)
	case moveDrop:
		next.queues[mv.route] = append([]expr.Value(nil), next.queues[mv.route][1:]...)
	}
	next.key = globalKey(next)
	next.parent = n.key
	next.move = mv.describe()
	if next.key == n.key {
		return nil, nil
	}
	return next, nil
}

// routeOutputs places emitted messages onto their routes.
func (e *explorer) routeOutputs(n *node, from int, outputs []fsm.OutputMsg) {
	for _, out := range outputs {
		for ri, r := range e.sys.Routes {
			if r.From != from || r.Message != out.Message {
				continue
			}
			msg := expr.Msg(out.Message, out.Fields)
			q := n.queues[ri]
			if len(q) >= r.Capacity {
				q = q[1:] // overrun: oldest message lost
			}
			n.queues[ri] = append(append([]expr.Value(nil), q...), msg)
		}
	}
}

func (e *explorer) checkState(n *node) {
	if len(e.opts.Invariants) == 0 {
		return
	}
	snap := snapshotOf(n)
	for _, inv := range e.opts.Invariants {
		if err := inv.Fn(snap); err != nil {
			e.violate(n, Violation{Kind: ViolationInvariant, Name: inv.Name, Msg: err.Error()})
		}
	}
}

func (e *explorer) violate(n *node, v Violation) {
	v.Trace = e.traceTo(n.key)
	e.res.Violations = append(e.res.Violations, v)
}

// traceTo reconstructs the move sequence from the initial state.
func (e *explorer) traceTo(key string) []string {
	var rev []string
	for cur := key; ; {
		info, ok := e.visited[cur]
		if !ok || info.move == "" {
			break
		}
		rev = append(rev, info.move)
		cur = info.parent
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

func snapshotOf(n *node) *Snapshot {
	snap := &Snapshot{
		States: make([]string, len(n.machines)),
		Vars:   make([]map[string]expr.Value, len(n.machines)),
		Queues: make([][]expr.Value, len(n.queues)),
	}
	for i, m := range n.machines {
		snap.States[i] = m.State()
		snap.Vars[i] = m.Vars()
	}
	for i, q := range n.queues {
		snap.Queues[i] = append([]expr.Value(nil), q...)
	}
	return snap
}

func cloneNode(n *node) *node {
	machines := make([]*fsm.Machine, len(n.machines))
	for i, m := range n.machines {
		machines[i] = m.Clone()
	}
	queues := make([][]expr.Value, len(n.queues))
	for i, q := range n.queues {
		queues[i] = append([]expr.Value(nil), q...)
	}
	return &node{machines: machines, queues: queues}
}

func globalKey(n *node) string {
	var sb strings.Builder
	for _, m := range n.machines {
		sb.WriteString(m.StateKey())
		sb.WriteString("#")
	}
	for _, q := range n.queues {
		sb.WriteString("[")
		for _, msg := range q {
			sb.WriteString(msg.HashKey())
			sb.WriteString(",")
		}
		sb.WriteString("]")
	}
	return sb.String()
}

func allFinal(machines []*fsm.Machine) bool {
	for _, m := range machines {
		if !m.InFinal() {
			return false
		}
	}
	return true
}
