package rtnet

import (
	"fmt"
	"net"
	"testing"
	"time"

	"protodsl/internal/arq"
	"protodsl/internal/faults"
	"protodsl/internal/netsim"
	"protodsl/internal/obs"
)

// TestChaosSoak is the seeded chaos soak behind `make chaos`: 64
// loopback flows through every degradation mode at once — Gilbert-
// Elliott bursty loss and a partition/heal on the client's send path, a
// mid-run server crash and restart on the same port, a panicking served
// engine, an overloaded shard, and an abandoned peer — run under -race
// in CI. It asserts the node *degrades* instead of stalling: every flow
// terminates, fresh post-restart flows all complete, and each defence
// left its fingerprint in the counters (drop_fault, rto_backoffs,
// sheds, panics_recovered, flows_expired). See DESIGN.md §13.
//
// Flow map: 0..27 wave 1 (pre-crash), 28..29 straddlers (started as the
// server dies — guaranteed to ride out the outage on RTO backoff),
// 30..59 wave 2 (post-restart, must complete OK), 60 panic, 61 overload
// flood, 62 abandoned peer, 63 liveness echo.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}

	// The chaos plan. Loss and the partition shape the client's send
	// path; the peer_crash window is read back via Crashes() to drive the
	// server kill/restart, exactly as a production chaos harness would.
	sch := &faults.Schedule{
		Seed:    42,
		Gilbert: &faults.GilbertElliott{PGoodBad: 0.04, PBadGood: 0.3, LossBad: 0.85},
		Events: []faults.Event{
			{Kind: faults.Partition, From: 80 * time.Millisecond, Until: 280 * time.Millisecond},
			{Kind: faults.JitterRamp, From: 300 * time.Millisecond, Until: 900 * time.Millisecond, Extra: 2 * time.Millisecond},
			{Kind: faults.PeerCrash, From: 400 * time.Millisecond, Until: 600 * time.Millisecond},
		},
	}
	crash := sch.Crashes()[0]

	serveChaos := func(node *Node) (*gbnServer, error) {
		s := &gbnServer{recvs: make(map[recvKey]*arq.GBNReceiver)}
		err := node.Serve(func(rt netsim.Runtime, port netsim.Port, peer netsim.Addr, flow byte) func(netsim.Addr, []byte) {
			switch flow {
			case 60: // rogue engine: panics on every frame
				return func(from netsim.Addr, data []byte) { panic("chaos: rogue engine") }
			case 61: // pathologically slow engine: forces shedding
				return func(from netsim.Addr, data []byte) { time.Sleep(2 * time.Millisecond) }
			case 63: // liveness echo
				return func(from netsim.Addr, data []byte) { _ = port.Send(from, data) }
			default:
				r, err := arq.NewGBNReceiver(port, peer)
				if err != nil {
					return nil
				}
				s.mu.Lock()
				s.recvs[recvKey{peer, flow}] = r
				s.mu.Unlock()
				return r.OnDatagram
			}
		})
		return s, err
	}

	// IdleTimeout must clear MaxRTO with room: a live flow whose backed-
	// off retransmissions are eaten by back-to-back bursts goes silent
	// for up to ~2 x MaxRTO, and reaping it would respawn a receiver
	// expecting seq 0 — a permanent stale-ack stall for the sender. 3x
	// margin keeps the reaper for genuinely dead peers.
	serverCfg := Config{Shards: 4, IdleTimeout: 300 * time.Millisecond}
	server1, err := Listen("127.0.0.1:0", serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serveChaos(server1); err != nil {
		t.Fatal(err)
	}
	serverAddrStr := string(server1.Addr())

	t0 := time.Now()
	client, err := Listen("127.0.0.1:0", Config{Shards: 4, Faults: sch})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	peer, err := client.Dial(serverAddrStr)
	if err != nil {
		t.Fatal(err)
	}

	// Adaptive RTO with a tight cap: backoff can never push the
	// inter-retransmit gap past the idle sweep or the retry budget past
	// the soak deadline (40 retries x 100ms bounds any stall at 4s).
	cfg := arq.FlowConfig{
		Window: 8, RTO: 20 * time.Millisecond, MaxRetries: 40,
		Adaptive: true, MaxRTO: 100 * time.Millisecond,
	}
	const payloadsPerFlow, payloadSize = 100, 256

	// Wave 1: 28 flows fight bursty loss and the partition.
	_, wave1Done := startGBNFlowsFrom(t, client, peer, cfg, 0, 28, payloadsPerFlow, payloadSize)

	// At the crash mark, launch two straddler flows and kill the server
	// under them: they are guaranteed to experience the full outage,
	// backing their RTO off until the restarted server answers.
	time.Sleep(time.Until(t0.Add(crash.From)))
	straddlers := make([]chan struct{}, 2)
	for i := range straddlers {
		id := byte(28 + i)
		f, err := client.Flow(id)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		var aerr error
		if err := f.Do(func(rt netsim.Runtime, port netsim.Port) {
			_, aerr = arq.AttachGBNSender(rt, port, peer, cfg,
				flowPayloads(int(id), payloadsPerFlow, payloadSize),
				func() { close(done) })
		}); err != nil {
			t.Fatal(err)
		}
		if aerr != nil {
			t.Fatal(aerr)
		}
		straddlers[i] = done
	}
	if err := server1.Close(); err != nil {
		t.Fatal(err)
	}
	server1Obs := server1.Obs()

	// Down for the crash window, then restart on the same port. A
	// restarted server has no engine state: flows that straddled the
	// crash mid-transfer see their acks go stale and must *terminate*
	// (give up within their retry budget) — termination, not success, is
	// the graceful-degradation contract for them.
	time.Sleep(time.Until(t0.Add(crash.Until)))
	server2, err := Listen(serverAddrStr, serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer server2.Close()
	srv2, err := serveChaos(server2)
	if err != nil {
		t.Fatal(err)
	}

	// Wave 2: 30 fresh flows against the restarted server, still under
	// bursty loss. These must all complete OK, so they get a roomier
	// retry budget than the straddlers (whose budget exists to bound the
	// stale-ack stall after the crash).
	wave2Cfg := cfg
	wave2Cfg.MaxRetries = 100
	wave2, wave2Done := startGBNFlowsFrom(t, client, peer, wave2Cfg, 30, 30, payloadsPerFlow, payloadSize)

	// Rogue engine: keep poking flow 60 until a panic is contained (the
	// faulted client path may eat any individual frame).
	pokeFlow, err := client.Flow(60)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, func() bool {
		if err := pokeFlow.Do(func(rt netsim.Runtime, port netsim.Port) {
			_ = port.Send(peer, []byte("boom"))
		}); err != nil {
			return false
		}
		time.Sleep(2 * time.Millisecond)
		return server2.Obs().Total(obs.PanicsRecovered) >= 1
	})

	// Abandoned peer: one frame on flow 62, then silence — the idle sweep
	// must reap the engine.
	ghostConn, err := net.Dial("udp", serverAddrStr)
	if err != nil {
		t.Fatal(err)
	}
	defer ghostConn.Close()
	if _, err := ghostConn.Write([]byte{62, ^byte(62), 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}

	// Every wave-1 and straddler flow must terminate (OK or a clean
	// give-up), none may hang.
	deadline := time.After(20 * time.Second)
	await := func(label string, done chan struct{}) {
		select {
		case <-done:
		case <-deadline:
			t.Fatalf("%s never terminated", label)
		}
	}
	for id, done := range wave1Done {
		await(fmt.Sprintf("wave-1 flow %d", id), done)
	}
	for i, done := range straddlers {
		await(fmt.Sprintf("straddler flow %d", 28+i), done)
	}
	// Wave 2 ran against a healthy (restarted) server: OK is mandatory.
	for i, done := range wave2Done {
		id := 30 + i
		await(fmt.Sprintf("wave-2 flow %d", id), done)
		var ok bool
		if err := client.Do(byte(id), func() { ok = wave2[i].Result().OK }); err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("post-restart flow %d failed against a healthy server", id)
		}
	}
	clientAddr := client.Addr()
	for i := 0; i < len(wave2); i++ {
		id := byte(30 + i)
		rcv := srv2.receiver(clientAddr, id)
		if rcv == nil {
			t.Fatalf("post-restart flow %d: no receiver on server2", id)
		}
		var n int
		if err := server2.Do(id, func() { n = len(rcv.Delivered()) }); err != nil {
			t.Fatal(err)
		}
		if n != payloadsPerFlow {
			t.Fatalf("post-restart flow %d: delivered %d/%d", id, n, payloadsPerFlow)
		}
	}

	// Overload: flood the slow flow 61 from a raw socket (bypassing the
	// client's fault injector) until the shard sheds. Sequenced after the
	// wave-2 verification because pool-dry shedding is deliberately
	// global — a flood hard enough to dry the shared batch pool sheds
	// *every* shard's traffic, which is the designed overload behaviour
	// but would make "wave 2 completes OK" a race against the flood.
	floodConn, err := net.Dial("udp", serverAddrStr)
	if err != nil {
		t.Fatal(err)
	}
	defer floodConn.Close()
	floodFrame := []byte{61, ^byte(61), 0xfe, 0xed}
	for i := 0; i < 4000; i++ {
		if _, err := floodConn.Write(floodFrame); err != nil {
			t.Fatal(err)
		}
		if i > 300 && server2.Obs().Total(obs.Sheds) > 0 {
			break
		}
	}
	waitFor(t, 15*time.Second, func() bool {
		return server2.Obs().Total(obs.Sheds) > 0
	})

	// Liveness: the surviving node still answers on a fresh flow.
	echoed := make(chan struct{}, 1)
	echoFlow, err := client.Flow(63)
	if err != nil {
		t.Fatal(err)
	}
	if err := echoFlow.Do(func(rt netsim.Runtime, port netsim.Port) {
		port.SetHandler(func(from netsim.Addr, data []byte) {
			select {
			case echoed <- struct{}{}:
			default:
			}
		})
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, func() bool {
		if err := echoFlow.Do(func(rt netsim.Runtime, port netsim.Port) {
			_ = port.Send(peer, []byte("alive?"))
		}); err != nil {
			return false
		}
		select {
		case <-echoed:
			return true
		case <-time.After(20 * time.Millisecond):
			return false
		}
	})

	// The idle sweep needs IdleTimeout of silence after the ghost frame.
	waitFor(t, 15*time.Second, func() bool {
		return server2.Obs().Total(obs.FlowsExpired) >= 1
	})

	// Every defence fired. Server counters are summed across the
	// incarnations — the crash must not launder them away.
	serverTotal := func(c obs.Counter) uint64 {
		return server1Obs.Total(c) + server2.Obs().Total(c)
	}
	if got := client.Obs().Total(obs.DropFault); got == 0 {
		t.Error("drop_fault = 0: the chaos schedule never dropped a frame")
	}
	if got := client.Obs().Total(obs.RTOBackoffs); got == 0 {
		t.Error("rto_backoffs = 0: no sender backed off across a partition and a crash")
	}
	if got := serverTotal(obs.Sheds); got == 0 {
		t.Error("sheds = 0: overload never shed")
	}
	if got := serverTotal(obs.PanicsRecovered); got == 0 {
		t.Error("panics_recovered = 0: rogue engine panic not contained")
	}
	if got := serverTotal(obs.FlowsExpired); got == 0 {
		t.Error("flows_expired = 0: abandoned peer never reaped")
	}
	t.Logf("chaos soak: drop_fault=%d rto_backoffs=%d sheds=%d panics_recovered=%d flows_expired=%d drop_draining=%d",
		client.Obs().Total(obs.DropFault), client.Obs().Total(obs.RTOBackoffs),
		serverTotal(obs.Sheds), serverTotal(obs.PanicsRecovered),
		serverTotal(obs.FlowsExpired), serverTotal(obs.DropDraining))
}
