// Package timerwheel is the shared O(1) timer store under both event
// cores: netsim.Sim (virtual time) and rtnet.Loop (real monotonic time)
// park their pending timers here instead of a binary heap.
//
// It is a hierarchical timing wheel (Varghese & Lauck): 11 levels of 64
// slots each, level ℓ slots spanning 64^ℓ ticks, so any 64-bit tick
// value has a home and arm/cancel are O(1) — a shift, a mask and a
// doubly-linked-list splice. Advancing jumps straight to the next
// occupied slot using one occupancy bitmap word per level (no per-tick
// scan), cascading higher-level slots down as their horizon arrives;
// each event cascades at most once per level, so advancement is O(1)
// amortised per event.
//
// Determinism contract (what makes the wheel byte-identical to the heap
// it replaced): events fire in strict (deadline, arm-order) order. The
// tick granularity quantises only *placement* — every event keeps its
// exact deadline, and a due slot is drained through a buffer ordered by
// (deadline, sequence), so two events one nanosecond apart in the same
// tick still fire in deadline order, and events at the same instant
// fire FIFO in arm order. See DESIGN.md §9 for the layout and the
// determinism argument.
//
// Cancellation really cancels: Cancel unlinks the event from its slot
// (or due buffer) immediately — a cancelled timer cannot fire, cannot
// hold memory beyond the free pool, and costs advancement nothing.
// Event structs are pooled and recycled across arm/fire/cancel cycles;
// the steady-state arm/cancel churn of an ARQ sender allocates nothing.
//
// Concurrency: a Wheel belongs to exactly one goroutine (the event loop
// that owns it), exactly like the Sim or Loop wrapping it.
package timerwheel

import (
	"math/bits"
	"sort"
	"time"
)

const (
	slotBits = 6
	numSlots = 1 << slotBits // 64
	slotMask = numSlots - 1
	// 11 levels × 6 bits = 66 bits ≥ any 64-bit tick, so no overflow
	// list is needed: every future deadline has a slot.
	numLevels = 11
)

// Event is one armed timer. It is owned by the wheel (allocated from
// its pool, recycled on fire/cancel); callers hold it only as an opaque
// cancellation handle and must not touch it after Fire or Cancel.
type Event struct {
	at  time.Duration
	seq uint64
	fn  func()

	prev, next *Event // intrusive slot list links (nil while due/free)
	level      int8   // slot level, or levelDue / levelFree
	slot       int8
}

// At returns the event's exact deadline (not quantised to a tick).
func (e *Event) At() time.Duration { return e.at }

const (
	levelDue  int8 = -1 // harvested into the due buffer
	levelFree int8 = -2 // in the free pool (fired or cancelled)
)

type slotList struct{ head, tail *Event }

func (l *slotList) push(e *Event) {
	e.prev, e.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = e
	} else {
		l.head = e
	}
	l.tail = e
}

func (l *slotList) unlink(e *Event) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

type wheelLevel struct {
	occ   uint64 // bit s set ⇔ slots[s] non-empty
	slots [numSlots]slotList
}

// Wheel is a hierarchical timing wheel. Create with New.
type Wheel struct {
	shift uint   // log2 of the tick granularity in nanoseconds
	cur   uint64 // current tick: all events at earlier ticks have been harvested
	seq   uint64 // next arm sequence number (FIFO tie-break)
	size  int    // live (armed, unfired, uncancelled) events

	levels [numLevels]wheelLevel

	// due holds harvested and same-tick events in (at, seq) order;
	// dueHead indexes the next event to pop. All due events share the
	// current tick, so deadlines differing only within one granule
	// still fire in exact deadline order.
	due     []*Event
	dueHead int

	free  *Event // free pool, linked through next
	freeN int
}

// New creates a wheel whose tick granularity is the given duration
// rounded up to a power of two nanoseconds (minimum 1ns). Granularity
// trades slot residency against cascade depth; it never affects firing
// order or deadlines, which stay exact.
func New(granularity time.Duration) *Wheel {
	if granularity < 1 {
		granularity = 1
	}
	shift := uint(bits.Len64(uint64(granularity) - 1))
	return &Wheel{shift: shift}
}

// Granularity returns the tick size in effect.
func (w *Wheel) Granularity() time.Duration { return time.Duration(1) << w.shift }

// Len returns the number of live events.
func (w *Wheel) Len() int { return w.size }

// PooledEvents returns the size of the free pool (recycled event
// structs awaiting reuse); the arm/cancel churn tests pin it.
func (w *Wheel) PooledEvents() int { return w.freeN }

func (w *Wheel) tickOf(at time.Duration) uint64 {
	if at < 0 {
		at = 0
	}
	return uint64(at) >> w.shift
}

func (w *Wheel) alloc() *Event {
	if e := w.free; e != nil {
		w.free = e.next
		e.next = nil
		w.freeN--
		return e
	}
	return &Event{}
}

func (w *Wheel) release(e *Event) {
	e.fn = nil
	e.prev = nil
	e.level = levelFree
	e.next = w.free
	w.free = e
	w.freeN++
}

// Arm schedules fn at absolute deadline at and returns the event as a
// cancellation handle. Deadlines may be in the "past" relative to the
// wheel's advancement (e.g. Post-at-now while draining the current
// instant); they join the due buffer in exact (at, seq) position.
func (w *Wheel) Arm(at time.Duration, fn func()) *Event {
	e := w.alloc()
	e.at, e.seq, e.fn = at, w.seq, fn
	w.seq++
	w.size++
	if t := w.tickOf(at); t > w.cur {
		w.place(e, t)
	} else {
		w.pushDue(e)
	}
	return e
}

// place links e into the slot owning tick t (t > w.cur).
func (w *Wheel) place(e *Event, t uint64) {
	delta := t - w.cur
	lvl := (bits.Len64(delta) - 1) / slotBits
	slot := int((t >> (slotBits * uint(lvl))) & slotMask)
	e.level, e.slot = int8(lvl), int8(slot)
	l := &w.levels[lvl]
	l.occ |= 1 << uint(slot)
	l.slots[slot].push(e)
}

// pushDue inserts e into the due buffer at its (at, seq) position. The
// common case — a new arm later than everything pending — appends.
func (w *Wheel) pushDue(e *Event) {
	e.level = levelDue
	live := w.due[w.dueHead:]
	i := sort.Search(len(live), func(i int) bool {
		o := live[i]
		if o.at != e.at {
			return o.at > e.at
		}
		return o.seq > e.seq
	})
	w.due = append(w.due, nil)
	copy(w.due[w.dueHead+i+1:], w.due[w.dueHead+i:])
	w.due[w.dueHead+i] = e
}

// Cancel unlinks a still-pending event and recycles it. It returns
// false (and does nothing) if the event already fired or was already
// cancelled — the caller-facing Timer wrappers clear their handle on
// fire, so a stale handle is never passed here in practice.
func (w *Wheel) Cancel(e *Event) bool {
	switch e.level {
	case levelFree:
		return false
	case levelDue:
		live := w.due[w.dueHead:]
		i := sort.Search(len(live), func(i int) bool {
			o := live[i]
			if o.at != e.at {
				return o.at >= e.at
			}
			return o.seq >= e.seq
		})
		if i >= len(live) || live[i] != e {
			return false // not present (already popped)
		}
		copy(live[i:], live[i+1:])
		w.due[len(w.due)-1] = nil
		w.due = w.due[:len(w.due)-1]
	default:
		l := &w.levels[e.level]
		l.slots[e.slot].unlink(e)
		if l.slots[e.slot].head == nil {
			l.occ &^= 1 << uint(e.slot)
		}
	}
	w.size--
	w.release(e)
	return true
}

// PeekDeadline returns the earliest pending deadline without firing
// anything.
func (w *Wheel) PeekDeadline() (time.Duration, bool) {
	if w.size == 0 {
		return 0, false
	}
	w.prime()
	return w.due[w.dueHead].at, true
}

// Pop removes and returns the earliest pending event's deadline and
// callback; ok is false when the wheel is empty. The event struct is
// recycled before fn runs, mirroring the heap cores' pop-then-call
// shape.
func (w *Wheel) Pop() (at time.Duration, fn func(), ok bool) {
	if w.size == 0 {
		return 0, nil, false
	}
	w.prime()
	e := w.due[w.dueHead]
	w.due[w.dueHead] = nil
	w.dueHead++
	at, fn = e.at, e.fn
	w.size--
	w.release(e)
	return at, fn, true
}

// prime ensures the due buffer holds the earliest pending events,
// advancing the wheel cursor to the next occupied slot (bitmap jump, no
// per-tick scan) and cascading higher levels down as their horizon
// arrives. Callers guarantee size > 0.
func (w *Wheel) prime() {
	if w.dueHead < len(w.due) {
		return
	}
	w.due = w.due[:0]
	w.dueHead = 0
	// The loop exits as soon as anything lands in due — via a level-0
	// harvest, or via a cascade dropping an event whose tick the cursor
	// just reached.
	for len(w.due) == 0 {
		// Level 0: any occupied slot at or after the cursor digit fires
		// next — its tick precedes every boundary a cascade could fill.
		d0 := uint(w.cur) & slotMask
		if rest := w.levels[0].occ >> d0; rest != 0 {
			s := d0 + uint(bits.TrailingZeros64(rest))
			w.cur = (w.cur &^ uint64(slotMask)) | uint64(s)
			w.harvest(int(s))
			break
		}
		// Nothing left in level 0's current cycle: cross the next slot
		// boundary. lower tracks occupancy below the level under
		// consideration — non-empty means wrapped entries that become
		// current after a single +1 step of this level's digit.
		lower := w.levels[0].occ
		advanced := false
		for lvl := 1; lvl < numLevels; lvl++ {
			shift := slotBits * uint(lvl)
			dl := uint(w.cur>>shift) & slotMask
			if lower != 0 {
				w.stepCur(((w.cur >> shift) + 1) << shift)
				advanced = true
				break
			}
			// The cursor's own slot holds only next-cycle entries
			// (cascaded away on entry), so search strictly above it.
			if rest := w.levels[lvl].occ >> dl >> 1; rest != 0 {
				s := dl + 1 + uint(bits.TrailingZeros64(rest))
				base := w.cur &^ ((uint64(1) << (shift + slotBits)) - 1)
				w.stepCur(base | uint64(s)<<shift)
				advanced = true
				break
			}
			lower |= w.levels[lvl].occ
		}
		if !advanced {
			panic("timerwheel: size > 0 but no occupied slot found")
		}
	}
	// A boundary-crossing cascade drops events at exactly the current
	// tick straight into due — but the cursor's own level-0 slot may
	// hold more events at that same tick (wrapped entries from before
	// the crossing). Every event in slot (0, cur&mask) provably shares
	// the current tick (a same-slot later-cycle tick would need an arm
	// from the future), so harvest it before sorting: the due buffer
	// must see *every* event due at this instant or the earliest one
	// can stay buried.
	if d0 := uint(w.cur) & slotMask; w.levels[0].occ&(1<<d0) != 0 {
		w.harvest(int(d0))
	}
	sortDue(w.due)
}

// stepCur moves the cursor to newCur (a slot boundary: digits below the
// changed level are zero) and cascades every slot the cursor just
// entered, highest changed level first. Cascaded events re-place by
// their current delta, so entries whose horizon has arrived drop
// levels, and next-cycle entries that merely share the slot index
// re-home correctly.
func (w *Wheel) stepCur(newCur uint64) {
	top := (bits.Len64(newCur^w.cur) - 1) / slotBits
	w.cur = newCur
	for lvl := top; lvl >= 1; lvl-- {
		d := uint(newCur>>(slotBits*uint(lvl))) & slotMask
		if w.levels[lvl].occ&(1<<d) != 0 {
			w.cascade(lvl, int(d))
		}
	}
}

// cascade detaches slot (lvl, s) and re-places each event relative to
// the current cursor.
func (w *Wheel) cascade(lvl, s int) {
	l := &w.levels[lvl]
	e := l.slots[s].head
	l.slots[s] = slotList{}
	l.occ &^= 1 << uint(s)
	for e != nil {
		next := e.next
		e.prev, e.next = nil, nil
		if t := w.tickOf(e.at); t > w.cur {
			w.place(e, t)
		} else {
			// Cursor reached the event's tick: it is due. prime sorts
			// the buffer before anyone reads it.
			e.level = levelDue
			w.due = append(w.due, e)
		}
		e = next
	}
}

// harvest drains level-0 slot s — whose events all share the current
// tick — into the due buffer; prime sorts it by (at, seq) afterwards.
func (w *Wheel) harvest(s int) {
	l := &w.levels[0]
	e := l.slots[s].head
	l.slots[s] = slotList{}
	l.occ &^= 1 << uint(s)
	for e != nil {
		next := e.next
		e.prev, e.next = nil, nil
		e.level = levelDue
		w.due = append(w.due, e)
		e = next
	}
}

// sortDue orders a freshly harvested due buffer by (at, seq). Small
// buffers (the overwhelmingly common case) use insertion sort; larger
// ones an in-place heapsort — both allocation-free and deterministic
// (the (at, seq) key is total, so stability is irrelevant).
func sortDue(due []*Event) {
	if len(due) <= 32 {
		for i := 1; i < len(due); i++ {
			e := due[i]
			j := i
			for j > 0 && dueAfter(due[j-1], e) {
				due[j] = due[j-1]
				j--
			}
			due[j] = e
		}
		return
	}
	sort.Sort(dueSlice(due))
}

func dueAfter(a, b *Event) bool {
	if a.at != b.at {
		return a.at > b.at
	}
	return a.seq > b.seq
}

type dueSlice []*Event

func (d dueSlice) Len() int           { return len(d) }
func (d dueSlice) Less(i, j int) bool { return dueAfter(d[j], d[i]) }
func (d dueSlice) Swap(i, j int)      { d[i], d[j] = d[j], d[i] }
