// Benchmark harness: one benchmark per experiment of EXPERIMENTS.md
// (E1..E10) plus the design-choice ablations of DESIGN.md §6. Run with
//
//	go test -bench=. -benchmem
//
// The human-readable experiment tables come from `go run ./cmd/experiments`;
// these benchmarks put numbers on the same code paths.
package protodsl

import (
	"fmt"
	"os"
	"testing"
	"time"

	"protodsl/internal/arq"
	gen "protodsl/internal/arq/gen"
	"protodsl/internal/codegen"
	"protodsl/internal/dfa"
	"protodsl/internal/dsl"
	"protodsl/internal/expr"
	"protodsl/internal/fsm"
	"protodsl/internal/harness"
	"protodsl/internal/ipv4"
	"protodsl/internal/loc"
	"protodsl/internal/netsim"
	"protodsl/internal/sockets"
	"protodsl/internal/testgen"
	"protodsl/internal/trust"
	"protodsl/internal/tuning"
	"protodsl/internal/verify"
	"protodsl/internal/wire"
)

// ---- E1: Figure 1 / IPv4 codec ----

func BenchmarkE1IPv4Codec(b *testing.B) {
	codec, err := ipv4.NewCodec()
	if err != nil {
		b.Fatal(err)
	}
	h := ipv4.Header{
		Version: 4, IHL: 5, TotalLength: 40, Identification: 0x1c46,
		Flags: 0x2, TTL: 64, Protocol: 6,
		Source: [4]byte{192, 168, 1, 1}, Destination: [4]byte{10, 0, 0, 1},
	}
	enc, err := codec.Encode(h)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := codec.Encode(h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("append-encode", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := codec.AppendEncode(buf[:0], h)
			if err != nil {
				b.Fatal(err)
			}
			buf = out[:0]
		}
	})
	b.Run("decode+validate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := codec.Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-in-place", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := codec.DecodeInPlace(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E2: LoC classification ----

func BenchmarkE2LocAnalysis(b *testing.B) {
	src, err := os.ReadFile("internal/sockets/sockets.go")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := loc.AnalyzeSource("sockets.go", string(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E3: validate-once witnesses ----

func BenchmarkE3ValidateOnce(b *testing.B) {
	codec, err := arq.NewCodec()
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	enc, err := codec.EncodePacket(1, payload)
	if err != nil {
		b.Fatal(err)
	}
	for _, stages := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("revalidate/stages=%d", stages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for s := 0; s < stages; s++ {
					if _, err := codec.DecodePacket(enc); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("witness/stages=%d", stages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pkt, err := codec.DecodePacket(enc)
				if err != nil {
					b.Fatal(err)
				}
				acc := 0
				for s := 0; s < stages; s++ {
					acc += int(pkt.Value().Seq)
				}
				_ = acc
			}
		})
	}
}

// ---- E4: static check vs model check ----

func BenchmarkE4StaticVsModelCheck(b *testing.B) {
	for _, seq := range []int{4, 16, 64} {
		sys, err := verify.BuildARQ(verify.ARQOptions{SeqSpace: seq, Capacity: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("static/seq=%d", seq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, spec := range sys.Specs {
					if rep := fsm.Check(spec); !rep.OK() {
						b.Fatal("check failed")
					}
				}
			}
		})
		b.Run(fmt.Sprintf("model/seq=%d", seq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := verify.Explore(sys, verify.Options{MaxStates: 1 << 22})
				if err != nil || res.Truncated {
					b.Fatal(err, res.Truncated)
				}
			}
		})
	}
}

// ---- E5: ARQ loss sweep ----

func benchPayloads(n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, size)
		for j := range p {
			p[j] = byte(i + j)
		}
		out[i] = p
	}
	return out
}

func BenchmarkE5ARQLossSweep(b *testing.B) {
	payloads := benchPayloads(30, 64)
	for _, loss := range []float64{0, 0.2, 0.5} {
		b.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := arq.RunTransfer(arq.Config{
					Seed: int64(i),
					Link: netsim.LinkParams{Delay: 2 * time.Millisecond, LossProb: loss},
					RTO:  20 * time.Millisecond, MaxRetries: 80,
				}, payloads)
				if err != nil {
					b.Fatal(err)
				}
				if res.SenderState != arq.StSent && res.SenderState != arq.StTimeout {
					b.Fatal("inconsistent end state")
				}
			}
		})
	}
}

// ---- E6: fuzzy adaptation ----

func BenchmarkE6FuzzyAdaptation(b *testing.B) {
	capacities := SteppedCapacity([]float64{800, 200, 600, 100}, 40)
	for i := 0; i < b.N; i++ {
		ctrl, err := NewRateController(50, 1000, 400)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := SimulateStream(capacities, FuzzySender{Controller: ctrl}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E7: trust routing ----

func BenchmarkE7TrustRouting(b *testing.B) {
	for _, strat := range []trust.Strategy{trust.StrategyRandom, trust.StrategyTrust} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := trust.Run(trust.Config{
					Relays: 8, AdversarialFraction: 0.5,
					Strategy: strat, Messages: 200, Seed: int64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E8: timer tuning ----

func BenchmarkE8TimerTuning(b *testing.B) {
	regime := tuning.StepRegime(50, 10*time.Millisecond, 120*time.Millisecond)
	b.Run("fixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tuning.Run(tuning.Config{
				Regime: regime, Policy: tuning.FixedTimer{D: 30 * time.Millisecond},
				LossProb: 0.1, Seed: int64(i),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			est, err := tuning.NewRTOEstimator(100*time.Millisecond, 5*time.Millisecond, 5*time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tuning.Run(tuning.Config{
				Regime: regime, Policy: tuning.AdaptiveTimer{E: est},
				LossProb: 0.1, Seed: int64(i),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E9: behavioural test generation ----

func BenchmarkE9TestGen(b *testing.B) {
	spec := arq.SenderSpec()
	b.Run("generate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := testgen.Generate(spec, testgen.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	suite, err := testgen.Generate(spec, testgen.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := testgen.Run(spec, suite); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E10: exact checker vs DFA ----

func BenchmarkE10CheckerVsDFA(b *testing.B) {
	spec := arq.SenderSpec()
	b.Run("fsm-check", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rep := fsm.Check(spec); !rep.OK() {
				b.Fatal("check failed")
			}
		}
	})
	d := dfa.SocketDFA()
	prog := &dfa.Seq{Stmts: []dfa.Stmt{
		&dfa.If{CondID: 1, Then: &dfa.Call{Sym: "open"}},
		&dfa.If{CondID: 1, Then: &dfa.Seq{Stmts: []dfa.Stmt{
			&dfa.Call{Sym: "send"}, &dfa.Call{Sym: "close"},
		}}},
	}}
	b.Run("dfa-analyze", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.Analyze(prog)
		}
	})
	b.Run("dfa-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.ExactCheck(prog, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- E11: sharded multi-flow contention ----

// BenchmarkE11MultiFlow drives the experiment harness end to end: 4
// seeded shards across the worker pool, each simulating flowsPerShard
// concurrent ARQ flows over one shared 512 KiB/s bottleneck — 32 total
// concurrent flows at the top size. Run with -race in CI to pin the
// one-Sim-per-goroutine contract.
func BenchmarkE11MultiFlow(b *testing.B) {
	const shards = 4
	for _, variant := range []harness.Variant{harness.VariantGBN, harness.VariantSR} {
		for _, flowsPerShard := range []int{2, 8} {
			name := fmt.Sprintf("%s/flows=%d", variant, shards*flowsPerShard)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rep, err := harness.Run(harness.MultiFlowConfig{
						Flows:           flowsPerShard,
						PayloadsPerFlow: 20,
						PayloadSize:     128,
						Variant:         variant,
						Window:          8,
						RTO:             80 * time.Millisecond,
						MaxRetries:      60,
						Bottleneck: netsim.LinkParams{
							Delay:     2 * time.Millisecond,
							Bandwidth: 512 * 1024,
							LossProb:  0.02,
						},
						Seed: int64(i),
					}, shards, 0)
					if err != nil {
						b.Fatal(err)
					}
					if rep.OKFlows != rep.Flows {
						b.Fatalf("only %d/%d flows completed", rep.OKFlows, rep.Flows)
					}
				}
			})
		}
	}
}

// ---- Ablations (DESIGN.md §6) ----

// BenchmarkCompiledVsTreeWalk: the compiled expression engine against the
// tree-walking interpreter on the ARQ machines' hot expressions — the
// guards evaluated on every ack/packet plus the sequence-advance
// assignment. Both paths see identical scopes and produce identical
// values (asserted by TestCompiledEngineDifferential in internal/dsl).
func BenchmarkCompiledVsTreeWalk(b *testing.B) {
	exprs := []string{
		"ack.seq == seq", // sender OK guard
		"p.seq == seq",   // receiver accept guard
		"p.seq != seq",   // receiver dupack guard
		"seq + 1",        // sequence advance
	}
	parsed := make([]expr.Expr, len(exprs))
	for i, src := range exprs {
		parsed[i] = expr.MustParse(src)
	}
	ack := expr.Msg("Ack", map[string]expr.Value{"seq": expr.U8(7), "chk": expr.U8(0)})
	pkt := expr.Msg("Packet", map[string]expr.Value{
		"seq": expr.U8(7), "chk": expr.U8(0), "paylen": expr.U16(3),
		"payload": expr.Bytes([]byte{1, 2, 3}),
	})

	b.Run("tree-walk", func(b *testing.B) {
		scope := expr.MapScope{"seq": expr.U8(7), "ack": ack, "p": pkt}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, e := range parsed {
				if _, err := expr.Eval(e, scope); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		layout := expr.NewScopeLayout()
		frame := func() *expr.Frame {
			seq, a, p := layout.Add("seq"), layout.Add("ack"), layout.Add("p")
			f := layout.NewFrame()
			f.Set(seq, expr.U8(7))
			f.Set(a, ack)
			f.Set(p, pkt)
			return f
		}()
		compiled := make([]expr.Compiled, len(parsed))
		for i, e := range parsed {
			compiled[i] = expr.Compile(e, layout)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, c := range compiled {
				if _, err := c(frame); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	// The same comparison at machine granularity: a full send/ack step
	// pair through the interpreter, which executes the compiled program.
	b.Run("machine-step", func(b *testing.B) {
		m, err := fsm.NewMachine(arq.SenderSpec())
		if err != nil {
			b.Fatal(err)
		}
		data := expr.Bytes([]byte{1, 2, 3})
		sendArgs := map[string]expr.Value{"data": data}
		ackFields := map[string]expr.Value{"seq": expr.U8(0), "chk": expr.U8(0)}
		okArgs := map[string]expr.Value{"ack": expr.MsgView("Ack", ackFields)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Step(arq.EvSend, sendArgs); err != nil {
				b.Fatal(err)
			}
			seq, _ := m.Var("seq")
			ackFields["seq"] = seq
			if _, err := m.Step(arq.EvOK, okArgs); err != nil {
				b.Fatal(err)
			}
		}
	})

	// And the slot-frame path the engines actually run: positional args,
	// shape-backed message values, frame outputs (fsm.Machine.StepEv).
	b.Run("machine-step-frame", func(b *testing.B) {
		m, err := fsm.NewMachine(arq.SenderSpec())
		if err != nil {
			b.Fatal(err)
		}
		evSend, _ := m.EventID(arq.EvSend)
		evOK, _ := m.EventID(arq.EvOK)
		ackShape := m.Program().MsgShape("Ack")
		ackFrame := expr.NewFrame(ackShape.NumFields())
		seqSlot, _ := ackShape.Slot("seq")
		chkSlot, _ := ackShape.Slot("chk")
		ackFrame.Set(chkSlot, expr.U8(0))
		data := expr.Bytes([]byte{1, 2, 3})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.StepEv(evSend, data); err != nil {
				b.Fatal(err)
			}
			seq, _ := m.Var("seq")
			ackFrame.Set(seqSlot, seq)
			if _, err := m.StepEv(evOK, expr.FrameMsg(ackShape, ackFrame)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationInterpVsCodegen: the fsm interpreter's Step against
// the generated typed-state transitions, on the ARQ send/ack hot loop.
func BenchmarkAblationInterpVsCodegen(b *testing.B) {
	b.Run("interpreter", func(b *testing.B) {
		m, err := fsm.NewMachine(arq.SenderSpec())
		if err != nil {
			b.Fatal(err)
		}
		data := expr.Bytes([]byte{1, 2, 3})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Step(arq.EvSend, map[string]expr.Value{"data": data}); err != nil {
				b.Fatal(err)
			}
			seq, _ := m.Var("seq")
			ack := expr.Msg("Ack", map[string]expr.Value{
				"seq": seq, "chk": expr.U8(0),
			})
			if _, err := m.Step(arq.EvOK, map[string]expr.Value{"ack": ack}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generated", func(b *testing.B) {
		ready := gen.NewSender()
		data := []byte{1, 2, 3}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wait, _, err := ready.Send(data)
			if err != nil {
				b.Fatal(err)
			}
			ackBytes, err := gen.EncodeAck(gen.Ack{Seq: wait.Vars.Seq})
			if err != nil {
				b.Fatal(err)
			}
			ack, err := gen.DecodeAck(ackBytes)
			if err != nil {
				b.Fatal(err)
			}
			ready, err = wait.Ack(ack)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	// The flat machine strips the witness/codec layer from the loop:
	// this is the raw dispatch cost — table load, indirect call, staged
	// output — the shape the endpoint drivers run.
	b.Run("flat-machine", func(b *testing.B) {
		m := gen.NewSenderMachine()
		data := []byte{1, 2, 3}
		var ack gen.Ack
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.SEND(data); err != nil {
				b.Fatal(err)
			}
			ack.Seq = m.Vars.Seq
			if _, err := m.OK(&ack); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCodecPath: the layout-interpreting wire codec against
// the generated inline codec, byte-identical outputs.
func BenchmarkAblationCodecPath(b *testing.B) {
	layout, err := wire.Compile(arq.PacketMessage())
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 128)
	vals := map[string]expr.Value{"seq": expr.U8(1), "payload": expr.Bytes(payload)}
	enc, err := layout.Encode(vals)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("layout-encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := layout.Encode(vals); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generated-encode", func(b *testing.B) {
		p := gen.Packet{Seq: 1, Payload: payload}
		for i := 0; i < b.N; i++ {
			if _, err := gen.EncodePacket(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("layout-append-encode", func(b *testing.B) {
		scratch := map[string]expr.Value{"seq": expr.U8(1), "payload": expr.BytesView(payload)}
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := layout.AppendEncode(buf[:0], scratch)
			if err != nil {
				b.Fatal(err)
			}
			buf = out[:0]
		}
	})
	b.Run("slot-append-encode", func(b *testing.B) {
		prog := layout.Program()
		frame := prog.NewFrame()
		seqSlot, _ := prog.Slot("seq")
		paySlot, _ := prog.Slot("payload")
		frame.Set(seqSlot, expr.U8(1))
		frame.Set(paySlot, expr.BytesView(payload))
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := prog.AppendEncode(buf[:0], frame)
			if err != nil {
				b.Fatal(err)
			}
			buf = out[:0]
		}
	})
	b.Run("generated-append-encode", func(b *testing.B) {
		p := gen.Packet{Seq: 1, Payload: payload}
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := gen.AppendEncodePacket(buf[:0], &p)
			if err != nil {
				b.Fatal(err)
			}
			buf = out[:0]
		}
	})
	b.Run("layout-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := layout.Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("layout-decode-into", func(b *testing.B) {
		vals := make(map[string]expr.Value, 4)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := layout.DecodeInto(vals, enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("slot-decode-into", func(b *testing.B) {
		prog := layout.Program()
		frame := prog.NewFrame()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := prog.DecodeInto(frame, enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generated-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := gen.DecodePacket(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("generated-decode-into", func(b *testing.B) {
		var p gen.Packet
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := gen.DecodePacketInto(&p, enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationChecksums: the paper's sum8 against inet16 and crc32
// on the same payload size.
func BenchmarkAblationChecksums(b *testing.B) {
	algoBits := map[wire.ChecksumAlgo]int{
		wire.ChecksumSum8: 8, wire.ChecksumInet16: 16, wire.ChecksumCRC32: 32,
	}
	for _, algo := range []wire.ChecksumAlgo{wire.ChecksumSum8, wire.ChecksumInet16, wire.ChecksumCRC32} {
		msg := &wire.Message{Name: "M", Fields: []wire.Field{
			{Name: "chk", Kind: wire.FieldUint, Bits: algoBits[algo],
				Compute: &wire.Compute{Kind: wire.ComputeChecksum, Algo: algo}},
			{Name: "body", Kind: wire.FieldBytes, LenKind: wire.LenRest},
		}}
		layout, err := wire.Compile(msg)
		if err != nil {
			b.Fatal(err)
		}
		vals := map[string]expr.Value{"body": expr.Bytes(make([]byte, 512))}
		b.Run(algo.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := layout.Encode(vals); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWindow: stop-and-wait (window 1) vs go-back-N windows
// on a 10ms link — the further-work extension's payoff.
func BenchmarkAblationWindow(b *testing.B) {
	payloads := benchPayloads(30, 64)
	for _, window := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := arq.RunTransferGBN(arq.GBNConfig{
					Seed: int64(i), Window: window,
					Link: netsim.LinkParams{Delay: 10 * time.Millisecond},
					RTO:  100 * time.Millisecond,
				}, payloads)
				if err != nil || !res.OK {
					b.Fatal(err, res.OK)
				}
			}
		})
	}
}

// ---- Compiler-path benchmarks ----

func BenchmarkDSLCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := dsl.Compile(dsl.ARQSource); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodegen(b *testing.B) {
	proto, _, err := dsl.Compile(dsl.ARQSource)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Generate(proto, codegen.Options{Package: "gen"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandwrittenSocketsTransfer(b *testing.B) {
	payloads := benchPayloads(30, 64)
	for i := 0; i < b.N; i++ {
		if _, err := sockets.RunTransfer(sockets.Config{
			Seed: int64(i),
			Link: netsim.LinkParams{Delay: 2 * time.Millisecond, LossProb: 0.2},
			RTO:  20 * time.Millisecond, MaxRetries: 80,
		}, payloads); err != nil {
			b.Fatal(err)
		}
	}
}
