package verify

import (
	"testing"

	"protodsl/internal/dsl"
	"protodsl/internal/expr"
	"protodsl/internal/fsm"
)

// TestModelCheckDSLCompiledARQ closes the loop between the surface DSL
// and the model checker: the machines model-checked here are the *same
// artefacts* that execute in the interpreter and feed the code generator
// — compiled from dsl.ARQSource, not hand-built models. This is the
// paper's §3.3 point 2 inverted: because our model IS the implementation
// source, there is no transcription gap for the checker to miss.
func TestModelCheckDSLCompiledARQ(t *testing.T) {
	proto, _, err := dsl.Compile(dsl.ARQSource)
	if err != nil {
		t.Fatal(err)
	}
	sender, ok := proto.Machine("Sender")
	if !ok {
		t.Fatal("no Sender")
	}
	receiver, ok := proto.Machine("Receiver")
	if !ok {
		t.Fatal("no Receiver")
	}

	payload := expr.Bytes([]byte{0xAB})
	sys := &System{
		Specs: []*fsm.Spec{sender, receiver},
		Routes: []Route{
			{From: 0, Message: "Packet", To: 1, Event: "RECV", Param: "p", Capacity: 1, Lossy: true},
			{From: 1, Message: "Ack", To: 0, Event: "OK", Param: "ack", Capacity: 1, Lossy: true},
		},
		Env: []EnvEvent{
			{Machine: 0, Event: "SEND", Args: []map[string]expr.Value{{"data": payload}}},
			{Machine: 0, Event: "TIMEOUT"},
			{Machine: 0, Event: "FAIL"},
			{Machine: 0, Event: "RETRY"},
			{Machine: 0, Event: "FINISH"},
			{Machine: 1, Event: "CLOSE"},
		},
	}

	res, err := Explore(sys, Options{
		MaxStates: 30000,
		Invariants: []Invariant{
			StopAndWaitInvariant(256),
			{
				Name: "sender-states-declared",
				Fn: func(snap *Snapshot) error {
					switch snap.States[0] {
					case "Ready", "Wait", "Timeout", "Sent":
						return nil
					}
					return errInvalidState(snap.States[0])
				},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("DSL-compiled ARQ violates properties: %v", res.Violations)
	}
	if res.States < 100 {
		t.Fatalf("suspiciously small explored space: %d", res.States)
	}
	t.Logf("explored %d states, %d transitions (truncated=%v) with zero violations",
		res.States, res.Transitions, res.Truncated)
}

type errInvalidState string

func (e errInvalidState) Error() string { return "undeclared sender state " + string(e) }
