package gen_test

import (
	"fmt"
	"testing"

	gen "protodsl/internal/arq/gen"
	"protodsl/internal/dsl"
	"protodsl/internal/expr"
	"protodsl/internal/genrt"
	"protodsl/internal/testgen"
)

// senderFlat adapts the AOT-generated SenderMachine to testgen.FlatMachine:
// string event names and expr values in, genrt outcomes out.
type senderFlat struct {
	m gen.SenderMachine
}

func (s *senderFlat) Reset()            { s.m.Reset() }
func (s *senderFlat) StateName() string { return s.m.StateName() }

func (s *senderFlat) Deliver(event string, args map[string]expr.Value) (genrt.StepOutcome, error) {
	switch event {
	case "SEND":
		return s.m.SEND(args["data"].AsBytes())
	case "OK":
		seq, ok := args["ack"].Field("seq")
		if !ok {
			return genrt.StepNone, fmt.Errorf("OK args missing ack.seq")
		}
		return s.m.OK(&gen.Ack{Seq: uint8(seq.AsUint())})
	case "FAIL":
		return s.m.FAIL()
	case "TIMEOUT":
		return s.m.TIMEOUT()
	case "RETRY":
		return s.m.RETRY()
	case "FINISH":
		return s.m.FINISH()
	default:
		return genrt.StepNone, fmt.Errorf("unknown sender event %q", event)
	}
}

func (s *senderFlat) TransitionName(out genrt.StepOutcome) string {
	return gen.SenderTransitionNames[out]
}

// receiverFlat adapts the generated ReceiverMachine the same way.
type receiverFlat struct {
	m gen.ReceiverMachine
}

func (r *receiverFlat) Reset()            { r.m.Reset() }
func (r *receiverFlat) StateName() string { return r.m.StateName() }

func (r *receiverFlat) Deliver(event string, args map[string]expr.Value) (genrt.StepOutcome, error) {
	switch event {
	case "RECV":
		p, ok := args["p"].Field("seq")
		if !ok {
			return genrt.StepNone, fmt.Errorf("RECV args missing p.seq")
		}
		payload, _ := args["p"].Field("payload")
		return r.m.RECV(&gen.Packet{Seq: uint8(p.AsUint()), Payload: payload.AsBytes()})
	case "CLOSE":
		return r.m.CLOSE()
	default:
		return genrt.StepNone, fmt.Errorf("unknown receiver event %q", event)
	}
}

func (r *receiverFlat) TransitionName(out genrt.StepOutcome) string {
	return gen.ReceiverTransitionNames[out]
}

// TestFlatMachinesReplayGeneratedSuites derives behavioural suites from
// the DSL-compiled ARQ specs and replays them against the AOT-generated
// flat machines: the generated dispatch tables must agree with the
// interpreted spec on every fired transition, rejection and ignore.
func TestFlatMachinesReplayGeneratedSuites(t *testing.T) {
	proto, _, err := dsl.Compile(dsl.ARQSource)
	if err != nil {
		t.Fatal(err)
	}
	flats := map[string]testgen.FlatMachine{
		"Sender":   &senderFlat{},
		"Receiver": &receiverFlat{},
	}
	for _, spec := range proto.Machines {
		flat, ok := flats[spec.Name]
		if !ok {
			t.Fatalf("no flat adapter for machine %q", spec.Name)
		}
		suite, err := testgen.Generate(spec, testgen.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if suite.Count(testgen.KindFire) == 0 {
			t.Fatalf("%s: suite has no firing cases", spec.Name)
		}
		// The interpreter must accept its own suite...
		if err := testgen.Run(spec, suite); err != nil {
			t.Fatalf("%s: interpreter replay: %v", spec.Name, err)
		}
		// ...and the generated flat machine must agree case for case.
		if err := testgen.RunFlat(suite, flat); err != nil {
			t.Errorf("%s: flat replay: %v", spec.Name, err)
		}
		t.Logf("%s: replayed %d cases (%d fire, %d reject, %d ignore, %.0f%% transition coverage)",
			spec.Name, len(suite.Cases),
			suite.Count(testgen.KindFire), suite.Count(testgen.KindReject), suite.Count(testgen.KindIgnore),
			100*suite.Coverage())
	}
}

// TestFlatReplayCatchesDivergence sabotages the adapter to prove RunFlat
// actually compares outcomes: remapping an event must fail the replay.
func TestFlatReplayCatchesDivergence(t *testing.T) {
	proto, _, err := dsl.Compile(dsl.ARQSource)
	if err != nil {
		t.Fatal(err)
	}
	var spec = proto.Machines[0] // Sender
	suite, err := testgen.Generate(spec, testgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := testgen.RunFlat(suite, &saboteur{}); err == nil {
		t.Fatal("sabotaged adapter passed replay")
	}
}

// saboteur swallows every event as ignored.
type saboteur struct{ senderFlat }

func (s *saboteur) Deliver(string, map[string]expr.Value) (genrt.StepOutcome, error) {
	return genrt.StepIgnored, nil
}
