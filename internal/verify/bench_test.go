package verify

import (
	"fmt"
	"testing"
)

// BenchmarkVerifyStates measures the parallel checker's state throughput
// on a fixed Go-Back-N configuration (1429 states, lossy reordering
// channels) across worker counts. On a single-core machine the
// workers>1 cases measure coordination overhead, not speedup — benchdiff
// skips cross-machine comparison for worker counts above the core count,
// and BENCH_hotpath.json records num_cpu alongside the numbers.
func BenchmarkVerifyStates(b *testing.B) {
	sys, err := BuildGBN(GBNOptions{SeqSpace: 8, Window: 3, Total: 4, Capacity: 2, Lossy: true, Reorder: true})
	if err != nil {
		b.Fatal(err)
	}
	inv := []Invariant{GBNInvariant(8)}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var states, elapsedNs int64
			for i := 0; i < b.N; i++ {
				res, err := Explore(sys, Options{
					MaxStates:  1 << 20,
					Invariants: inv,
					Workers:    workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Violations) != 0 {
					b.Fatalf("unexpected violations: %d", len(res.Violations))
				}
				states += int64(res.States)
				elapsedNs += res.Stats.Elapsed.Nanoseconds()
			}
			if elapsedNs > 0 {
				b.ReportMetric(float64(states)/(float64(elapsedNs)/1e9), "states/s")
			}
		})
	}
}

// BenchmarkVerifyStatesSequential is the reference engine on the same
// configuration, for the §12 comparison table.
func BenchmarkVerifyStatesSequential(b *testing.B) {
	sys, err := BuildGBN(GBNOptions{SeqSpace: 8, Window: 3, Total: 4, Capacity: 2, Lossy: true, Reorder: true})
	if err != nil {
		b.Fatal(err)
	}
	inv := []Invariant{GBNInvariant(8)}
	var states, elapsedNs int64
	for i := 0; i < b.N; i++ {
		res, err := ExploreSequential(sys, Options{MaxStates: 1 << 20, Invariants: inv})
		if err != nil {
			b.Fatal(err)
		}
		states += int64(res.States)
		elapsedNs += res.Stats.Elapsed.Nanoseconds()
	}
	if elapsedNs > 0 {
		b.ReportMetric(float64(states)/(float64(elapsedNs)/1e9), "states/s")
	}
}
