package expr

import (
	"fmt"

	"protodsl/internal/checksum"
)

// Builtin describes a builtin function of the language: its arity and
// typing discipline plus its evaluator. All builtins are total.
type Builtin struct {
	Name string
	// CheckArgs validates argument types and returns the result type.
	CheckArgs func(args []Type) (Type, error)
	// Eval computes the result. Arguments are fully evaluated.
	Eval func(args []Value) (Value, error)
}

// builtins is the fixed registry of the language's functions.
var builtins = map[string]*Builtin{
	"len":    builtinLen,
	"u8":     castBuiltin("u8", 8),
	"u16":    castBuiltin("u16", 16),
	"u32":    castBuiltin("u32", 32),
	"u64":    castBuiltin("u64", 64),
	"min":    builtinMin,
	"max":    builtinMax,
	"sum8":   builtinSum8,
	"inet16": builtinInet16,
	"crc32":  builtinCRC32,
}

// LookupBuiltin returns the named builtin, if it exists.
func LookupBuiltin(name string) (*Builtin, bool) {
	b, ok := builtins[name]
	return b, ok
}

// BuiltinNames returns the names of all builtins (sorted).
func BuiltinNames() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

var builtinLen = &Builtin{
	Name: "len",
	CheckArgs: func(args []Type) (Type, error) {
		if len(args) != 1 {
			return Type{}, fmt.Errorf("len takes 1 argument, got %d", len(args))
		}
		if args[0].Kind != KindBytes && args[0].Kind != KindString {
			return Type{}, fmt.Errorf("len requires bytes or string, got %s", args[0])
		}
		return TU32, nil
	},
	Eval: func(args []Value) (Value, error) {
		switch args[0].Kind() {
		case KindBytes:
			return U32(uint64(len(args[0].RawBytes()))), nil
		case KindString:
			return U32(uint64(len(args[0].AsString()))), nil
		default:
			return Value{}, fmt.Errorf("len: bad operand kind %s", args[0].Kind())
		}
	},
}

func castBuiltin(name string, bits int) *Builtin {
	return &Builtin{
		Name: name,
		CheckArgs: func(args []Type) (Type, error) {
			if len(args) != 1 {
				return Type{}, fmt.Errorf("%s takes 1 argument, got %d", name, len(args))
			}
			if args[0].Kind != KindUint {
				return Type{}, fmt.Errorf("%s requires uint, got %s", name, args[0])
			}
			return TUint(bits), nil
		},
		Eval: func(args []Value) (Value, error) {
			return Uint(args[0].AsUint(), bits), nil
		},
	}
}

func minMaxBuiltin(name string, pickMax bool) *Builtin {
	return &Builtin{
		Name: name,
		CheckArgs: func(args []Type) (Type, error) {
			if len(args) != 2 {
				return Type{}, fmt.Errorf("%s takes 2 arguments, got %d", name, len(args))
			}
			for _, a := range args {
				if a.Kind != KindUint {
					return Type{}, fmt.Errorf("%s requires uints, got %s", name, a)
				}
			}
			bits := args[0].Bits
			if args[1].Bits > bits {
				bits = args[1].Bits
			}
			return TUint(bits), nil
		},
		Eval: func(args []Value) (Value, error) {
			a, b := args[0].AsUint(), args[1].AsUint()
			bits := args[0].Bits()
			if args[1].Bits() > bits {
				bits = args[1].Bits()
			}
			if (a > b) == pickMax {
				return Uint(a, bits), nil
			}
			return Uint(b, bits), nil
		},
	}
}

var (
	builtinMin = minMaxBuiltin("min", false)
	builtinMax = minMaxBuiltin("max", true)
)

// builtinSum8 is the paper's `check : Byte → List Byte → Byte` checksum:
// the additive-mod-256 sum over all argument bytes. Uint arguments
// contribute their big-endian bytes; bytes arguments contribute each byte.
var builtinSum8 = &Builtin{
	Name: "sum8",
	CheckArgs: func(args []Type) (Type, error) {
		if len(args) == 0 {
			return Type{}, fmt.Errorf("sum8 requires at least 1 argument")
		}
		for _, a := range args {
			if a.Kind != KindUint && a.Kind != KindBytes {
				return Type{}, fmt.Errorf("sum8 requires uint or bytes arguments, got %s", a)
			}
		}
		return TU8, nil
	},
	Eval: func(args []Value) (Value, error) {
		var sum uint64
		for _, a := range args {
			switch a.Kind() {
			case KindUint:
				v := a.AsUint()
				for shift := a.Bits() - 8; shift >= 0; shift -= 8 {
					sum += (v >> uint(shift)) & 0xFF
				}
			case KindBytes:
				sum += checksum.Sum8(a.RawBytes())
			default:
				return Value{}, fmt.Errorf("sum8: bad operand kind %s", a.Kind())
			}
		}
		return U8(sum), nil
	},
}

// Inet16 computes the 16-bit one's-complement Internet checksum (RFC 1071)
// over the given bytes. Exposed for reuse by the wire encoder; the
// implementation is the shared word-at-a-time one in internal/checksum.
func Inet16(data []byte) uint16 {
	return checksum.Inet16(data)
}

var builtinInet16 = &Builtin{
	Name: "inet16",
	CheckArgs: func(args []Type) (Type, error) {
		if len(args) != 1 || args[0].Kind != KindBytes {
			return Type{}, fmt.Errorf("inet16 takes 1 bytes argument")
		}
		return TU16, nil
	},
	Eval: func(args []Value) (Value, error) {
		return U16(uint64(Inet16(args[0].RawBytes()))), nil
	},
}

var builtinCRC32 = &Builtin{
	Name: "crc32",
	CheckArgs: func(args []Type) (Type, error) {
		if len(args) != 1 || args[0].Kind != KindBytes {
			return Type{}, fmt.Errorf("crc32 takes 1 bytes argument")
		}
		return TU32, nil
	},
	Eval: func(args []Value) (Value, error) {
		return U32(uint64(checksum.CRC32(args[0].RawBytes()))), nil
	},
}
