package main

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"protodsl/internal/harness"
	"protodsl/internal/metrics"
	"protodsl/internal/netsim"
)

// runE11 scales the ARQ experiments to fleets: many concurrent flows
// multiplexed over one bandwidth-limited bottleneck, sharded across a
// worker pool (one deterministic Sim per goroutine). It shows (a) how
// per-flow goodput degrades — and stays fair — as contention grows, and
// (b) selective repeat's retransmission advantage over go-back-N at
// scale. This is the ROADMAP's heavy-traffic direction: the same checked
// protocol machines, thousands of packets, every core busy.
func runE11(_ *ctx, out io.Writer) error {
	const shards = 4
	base := harness.MultiFlowConfig{
		PayloadsPerFlow: 20,
		PayloadSize:     128,
		Window:          8,
		RTO:             80 * time.Millisecond,
		MaxRetries:      60,
		Bottleneck: netsim.LinkParams{
			Delay:     2 * time.Millisecond,
			Bandwidth: 512 * 1024,
			LossProb:  0.02,
		},
		Seed: 11,
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > shards {
		workers = shards // harness.Run caps the pool at one worker per shard
	}
	tb := metrics.NewTable(
		fmt.Sprintf("E11: multi-flow contention on a 512 KiB/s bottleneck (%d shards, %d workers)",
			shards, workers),
		"variant", "flows/shard", "total flows", "ok", "goodput/flow B/s", "fairness", "retrans", "mean dur")
	for _, variant := range []harness.Variant{harness.VariantGBN, harness.VariantSR} {
		for _, flows := range []int{1, 4, 16, 32} {
			cfg := base
			cfg.Variant = variant
			cfg.Flows = flows
			rep, err := harness.Run(cfg, shards, 0)
			if err != nil {
				return err
			}
			tb.AddRow(variant.String(), flows, rep.Flows,
				fmt.Sprintf("%d/%d", rep.OKFlows, rep.Flows),
				rep.Goodput.Mean(),
				rep.Fairness.Mean(),
				rep.Retransmits,
				fmt.Sprintf("%.1fms", rep.Duration.Mean()*1000))
		}
	}
	fmt.Fprintln(out, tb)
	fmt.Fprintln(out, "Reading: goodput per flow falls roughly linearly as flows share the")
	fmt.Fprintln(out, "bottleneck while Jain fairness stays near 1 (identical flows get equal")
	fmt.Fprintln(out, "shares); selective repeat needs fewer retransmissions than go-back-N at")
	fmt.Fprintln(out, "the same loss rate because it resends only what was actually lost.")
	return nil
}
