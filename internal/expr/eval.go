package expr

import (
	"errors"
	"fmt"
)

// ErrDivisionByZero is returned by Eval when a / or % has a zero divisor.
// It is the only runtime failure a type-checked expression can produce.
var ErrDivisionByZero = errors.New("division by zero")

// EvalError reports an evaluation failure with location context.
type EvalError struct {
	Offset int
	Err    error
}

// Error implements error.
func (e *EvalError) Error() string {
	return fmt.Sprintf("eval error at offset %d: %v", e.Offset, e.Err)
}

// Unwrap exposes the underlying cause for errors.Is/As.
func (e *EvalError) Unwrap() error { return e.Err }

func evalErrf(pos int, err error) error {
	return &EvalError{Offset: pos, Err: err}
}

// Eval evaluates a (type-checked) expression against the scope.
// Evaluation is total: it always terminates, and the only possible errors
// are division by zero and — for expressions that were not checked first —
// kind mismatches and missing variables.
func Eval(e Expr, scope Scope) (Value, error) {
	switch n := e.(type) {
	case *Lit:
		return n.Val, nil
	case *Ident:
		v, ok := scope.VarValue(n.Name)
		if !ok {
			return Value{}, evalErrf(n.Offset, fmt.Errorf("undefined variable %q", n.Name))
		}
		return v, nil
	case *FieldAccess:
		x, err := Eval(n.X, scope)
		if err != nil {
			return Value{}, err
		}
		if x.Kind() != KindMsg {
			return Value{}, evalErrf(n.Offset, fmt.Errorf("field access on %s value", x.Kind()))
		}
		f, ok := x.Field(n.Name)
		if !ok {
			return Value{}, evalErrf(n.Offset, fmt.Errorf("message %s has no field %q", x.MsgName(), n.Name))
		}
		return f, nil
	case *Unary:
		return evalUnary(n, scope)
	case *Binary:
		return evalBinary(n, scope)
	case *Call:
		b, ok := LookupBuiltin(n.Func)
		if !ok {
			return Value{}, evalErrf(n.Offset, fmt.Errorf("unknown function %q", n.Func))
		}
		args := make([]Value, len(n.Args))
		for i, a := range n.Args {
			v, err := Eval(a, scope)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		v, err := b.Eval(args)
		if err != nil {
			return Value{}, evalErrf(n.Offset, err)
		}
		return v, nil
	default:
		return Value{}, evalErrf(e.Pos(), fmt.Errorf("unknown expression node %T", e))
	}
}

// EvalBool evaluates an expression expected to produce a boolean.
func EvalBool(e Expr, scope Scope) (bool, error) {
	v, err := Eval(e, scope)
	if err != nil {
		return false, err
	}
	if v.Kind() != KindBool {
		return false, evalErrf(e.Pos(), fmt.Errorf("expected bool result, got %s", v.Kind()))
	}
	return v.AsBool(), nil
}

func evalUnary(n *Unary, scope Scope) (Value, error) {
	x, err := Eval(n.X, scope)
	if err != nil {
		return Value{}, err
	}
	switch n.Op {
	case OpNot:
		if x.Kind() != KindBool {
			return Value{}, evalErrf(n.Offset, fmt.Errorf("! requires bool, got %s", x.Kind()))
		}
		return Bool(!x.AsBool()), nil
	case OpNeg:
		if x.Kind() != KindUint {
			return Value{}, evalErrf(n.Offset, fmt.Errorf("- requires uint, got %s", x.Kind()))
		}
		// Two's-complement negation at the operand's width.
		return Uint(-x.AsUint(), x.Bits()), nil
	default:
		return Value{}, evalErrf(n.Offset, fmt.Errorf("invalid unary op %s", n.Op))
	}
}

func evalBinary(n *Binary, scope Scope) (Value, error) {
	// Short-circuit logical operators.
	if n.Op == OpAnd || n.Op == OpOr {
		xb, err := EvalBool(n.X, scope)
		if err != nil {
			return Value{}, err
		}
		if n.Op == OpAnd && !xb {
			return Bool(false), nil
		}
		if n.Op == OpOr && xb {
			return Bool(true), nil
		}
		yb, err := EvalBool(n.Y, scope)
		if err != nil {
			return Value{}, err
		}
		return Bool(yb), nil
	}

	x, err := Eval(n.X, scope)
	if err != nil {
		return Value{}, err
	}
	y, err := Eval(n.Y, scope)
	if err != nil {
		return Value{}, err
	}

	switch n.Op {
	case OpEq:
		return Bool(equalValues(x, y)), nil
	case OpNe:
		return Bool(!equalValues(x, y)), nil
	}

	if x.Kind() != KindUint || y.Kind() != KindUint {
		return Value{}, evalErrf(n.Offset, fmt.Errorf("operator %s requires uints, got %s and %s", n.Op, x.Kind(), y.Kind()))
	}
	a, b := x.AsUint(), y.AsUint()
	bits := maxInt(x.Bits(), y.Bits())
	switch n.Op {
	case OpLt:
		return Bool(a < b), nil
	case OpLe:
		return Bool(a <= b), nil
	case OpGt:
		return Bool(a > b), nil
	case OpGe:
		return Bool(a >= b), nil
	case OpAdd:
		return Uint(a+b, bits), nil
	case OpSub:
		return Uint(a-b, bits), nil
	case OpMul:
		return Uint(a*b, bits), nil
	case OpDiv:
		if b == 0 {
			return Value{}, evalErrf(n.Offset, ErrDivisionByZero)
		}
		return Uint(a/b, bits), nil
	case OpMod:
		if b == 0 {
			return Value{}, evalErrf(n.Offset, ErrDivisionByZero)
		}
		return Uint(a%b, bits), nil
	case OpBitAnd:
		return Uint(a&b, bits), nil
	case OpBitOr:
		return Uint(a|b, bits), nil
	case OpBitXor:
		return Uint(a^b, bits), nil
	case OpShl:
		if b >= 64 {
			return Uint(0, x.Bits()), nil
		}
		return Uint(a<<b, x.Bits()), nil
	case OpShr:
		if b >= 64 {
			return Uint(0, x.Bits()), nil
		}
		return Uint(a>>b, x.Bits()), nil
	default:
		return Value{}, evalErrf(n.Offset, fmt.Errorf("invalid binary op %s", n.Op))
	}
}

// equalValues compares values, treating uints of different widths as
// numerically comparable (mirroring Check's comparability rule).
func equalValues(x, y Value) bool {
	if x.Kind() == KindUint && y.Kind() == KindUint {
		return x.AsUint() == y.AsUint()
	}
	return x.Equal(y)
}
