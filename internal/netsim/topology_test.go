package netsim

import (
	"errors"
	"testing"
	"time"
)

func TestStarTopology(t *testing.T) {
	s := New(1)
	hub, leaves, err := Star(s, "hub", []string{"a", "b", "c"}, LinkParams{Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d", len(leaves))
	}
	got := map[Addr]int{}
	hub.SetHandler(func(from Addr, data []byte) { got[from]++ })
	for _, leaf := range leaves {
		if err := leaf.Send(hub.Addr(), []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	// Leaves are not connected to each other.
	if err := leaves[0].Send(leaves[1].Addr(), []byte{1}); !errors.Is(err, ErrNoRoute) {
		t.Errorf("leaf-to-leaf err = %v, want ErrNoRoute", err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("hub heard from %d leaves, want 3", len(got))
	}

	if _, _, err := Star(New(2), "hub", nil, LinkParams{}); !errors.Is(err, ErrTopology) {
		t.Errorf("empty star err = %v", err)
	}
}

func TestChainForwardsAcrossHops(t *testing.T) {
	s := New(1)
	eps, err := Chain(s, []string{"a", "b", "c", "d"}, LinkParams{Delay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	a, d := eps[0], eps[3]
	var got []byte
	var at time.Duration
	d.SetHandler(func(_ Addr, data []byte) { got = append([]byte(nil), data...); at = s.Now() })
	if err := a.Send(eps[1].Addr(), []byte{42}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("chain end received %v", got)
	}
	if at != 3*time.Millisecond {
		t.Errorf("3-hop delivery at %s, want 3ms", at)
	}

	// And back the other way.
	var back []byte
	a.SetHandler(func(_ Addr, data []byte) { back = append([]byte(nil), data...) })
	if err := d.Send(eps[2].Addr(), []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != 7 {
		t.Fatalf("reverse chain received %v", back)
	}

	if _, err := Chain(New(2), []string{"solo"}, LinkParams{}); !errors.Is(err, ErrTopology) {
		t.Errorf("1-node chain err = %v", err)
	}
}

func TestMuxSeparatesFlows(t *testing.T) {
	s := New(1)
	a, _ := s.NewEndpoint("A")
	b, _ := s.NewEndpoint("B")
	s.Connect(a, b, LinkParams{Delay: time.Millisecond})
	ma, mb := NewMux(a), NewMux(b)

	af0, err := ma.Flow(0)
	if err != nil {
		t.Fatal(err)
	}
	af1, _ := ma.Flow(1)
	bf0, _ := mb.Flow(0)
	bf1, _ := mb.Flow(1)
	if _, err := ma.Flow(1); !errors.Is(err, ErrFlowInUse) {
		t.Errorf("double-claim err = %v", err)
	}

	var got0, got1 []byte
	bf0.SetHandler(func(_ Addr, data []byte) { got0 = append(got0, data...) })
	bf1.SetHandler(func(_ Addr, data []byte) { got1 = append(got1, data...) })
	if err := af0.Send(b.Addr(), []byte{10}); err != nil {
		t.Fatal(err)
	}
	if err := af1.Send(b.Addr(), []byte{11}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(got0) != 1 || got0[0] != 10 {
		t.Errorf("flow 0 received %v", got0)
	}
	if len(got1) != 1 || got1[0] != 11 {
		t.Errorf("flow 1 received %v", got1)
	}

	// Reverse direction works through the same muxes.
	var echoed []byte
	af0.SetHandler(func(_ Addr, data []byte) { echoed = append(echoed, data...) })
	if err := bf0.Send(a.Addr(), []byte{99}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if len(echoed) != 1 || echoed[0] != 99 {
		t.Errorf("reverse flow received %v", echoed)
	}
	_ = bf1
	if af0.ID() != 0 || af1.ID() != 1 {
		t.Error("flow ids wrong")
	}
}

// Two muxed flows share one bandwidth-limited link: their packets queue
// behind each other, unlike two separate links.
func TestMuxFlowsShareBottleneckBandwidth(t *testing.T) {
	s := New(1)
	a, _ := s.NewEndpoint("A")
	b, _ := s.NewEndpoint("B")
	// 1000 B/s; each framed packet is 98+2 = 100 bytes -> 100ms each.
	s.Connect(a, b, LinkParams{Bandwidth: 1000})
	ma, mb := NewMux(a), NewMux(b)
	f0, _ := ma.Flow(0)
	f1, _ := ma.Flow(1)
	r0, _ := mb.Flow(0)
	r1, _ := mb.Flow(1)
	var t0, t1 time.Duration
	r0.SetHandler(func(Addr, []byte) { t0 = s.Now() })
	r1.SetHandler(func(Addr, []byte) { t1 = s.Now() })
	if err := f0.Send(b.Addr(), make([]byte, 98)); err != nil {
		t.Fatal(err)
	}
	if err := f1.Send(b.Addr(), make([]byte, 98)); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if t0 != 100*time.Millisecond || t1 != 200*time.Millisecond {
		t.Errorf("deliveries at %s/%s, want 100ms/200ms (shared serialisation)", t0, t1)
	}
}

// A corrupted flow-id header must drop the frame, never deliver it to
// the wrong flow: the id/complement pair catches any single-bit flip in
// the header.
func TestMuxCorruptedHeaderDropsNotMisroutes(t *testing.T) {
	s := New(1)
	a, _ := s.NewEndpoint("A")
	b, _ := s.NewEndpoint("B")
	s.Connect(a, b, LinkParams{})
	mb := NewMux(b)
	var deliveries int
	for id := 0; id < 256; id++ {
		fp, err := mb.Flow(byte(id))
		if err != nil {
			t.Fatal(err)
		}
		fp.SetHandler(func(Addr, []byte) { deliveries++ })
	}
	// Hand-build frames for flow 7 and flip each header bit in turn —
	// every flip must be dropped, not handed to another flow's handler.
	for bit := 0; bit < 16; bit++ {
		frame := []byte{7, ^byte(7), 1, 2, 3}
		frame[bit/8] ^= 1 << (bit % 8)
		if err := a.Send(b.Addr(), frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if deliveries != 0 {
		t.Errorf("%d corrupted-header frames delivered, want 0", deliveries)
	}
	if mb.Drops() != 16 {
		t.Errorf("Drops = %d, want 16", mb.Drops())
	}
	// An intact frame still goes through.
	if err := a.Send(b.Addr(), []byte{7, ^byte(7), 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if deliveries != 1 {
		t.Errorf("intact frame deliveries = %d, want 1", deliveries)
	}
}

// Lost packets still occupy the transmitter: with 100% loss followed by
// a clean packet, the survivor is delayed by the lost packet's
// serialisation time.
func TestLostPacketStillChargesBandwidth(t *testing.T) {
	s := New(1)
	a, _ := s.NewEndpoint("A")
	b, _ := s.NewEndpoint("B")
	s.ConnectDirectional(a, b, LinkParams{Bandwidth: 1000, LossProb: 1})
	s.ConnectDirectional(b, a, LinkParams{})
	var at time.Duration
	b.SetHandler(func(Addr, []byte) { at = s.Now() })
	if err := a.Send(b.Addr(), make([]byte, 100)); err != nil { // lost, but serialises 100ms
		t.Fatal(err)
	}
	s.SetLinkParams(a.Addr(), b.Addr(), LinkParams{Bandwidth: 1000})
	if err := a.Send(b.Addr(), make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if at != 200*time.Millisecond {
		t.Errorf("survivor delivered at %s, want 200ms (lost packet must charge the link)", at)
	}
}

// Over-MTU packets are likewise charged before being discarded.
func TestOversizePacketStillChargesBandwidth(t *testing.T) {
	s := New(1)
	a, _ := s.NewEndpoint("A")
	b, _ := s.NewEndpoint("B")
	s.ConnectDirectional(a, b, LinkParams{Bandwidth: 1000, MTU: 150})
	s.ConnectDirectional(b, a, LinkParams{})
	var at time.Duration
	b.SetHandler(func(Addr, []byte) { at = s.Now() })
	if err := a.Send(b.Addr(), make([]byte, 200)); err != nil { // dropped, serialises 200ms
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if at != 300*time.Millisecond {
		t.Errorf("survivor delivered at %s, want 300ms (oversize packet must charge the link)", at)
	}
}

// Each copy of a duplicated packet rolls corruption independently: with
// CorruptProb 1 both copies are corrupted, but (almost always) at
// different bits — they must not share the same flip.
func TestDupCopiesCorruptIndependently(t *testing.T) {
	s := New(9)
	a, _ := s.NewEndpoint("A")
	b, _ := s.NewEndpoint("B")
	s.Connect(a, b, LinkParams{Delay: time.Millisecond, DupProb: 1, CorruptProb: 1})
	var copies [][]byte
	b.SetHandler(func(_ Addr, data []byte) { copies = append(copies, append([]byte(nil), data...)) })
	// Send enough pairs that identical independent flips (p = 1/256 per
	// pair for a 32-byte payload) are astronomically unlikely to happen
	// every time.
	const pairs = 20
	for i := 0; i < pairs; i++ {
		if err := a.Send(b.Addr(), make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
		// Drain between sends so copies[2i] / copies[2i+1] are one pair.
		if err := s.RunUntilIdle(1000); err != nil {
			t.Fatal(err)
		}
	}
	if len(copies) != 2*pairs {
		t.Fatalf("delivered %d copies, want %d", len(copies), 2*pairs)
	}
	if s.Stats().Corrupted != 2*pairs {
		t.Errorf("corrupted = %d, want %d (one roll per copy)", s.Stats().Corrupted, 2*pairs)
	}
	identical := 0
	for i := 0; i < len(copies); i += 2 {
		if string(copies[i]) == string(copies[i+1]) {
			identical++
		}
	}
	if identical == pairs {
		t.Error("every dup pair shares the same flipped bit: corruption not independent per copy")
	}
}
