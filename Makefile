GO ?= go

.PHONY: all build test race chaos verify verify-full bench benchfull bench-json bench-diff allocscheck fuzz-smoke lint fmt vet fmtcheck docscheck clean

all: build test lint docscheck verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The packages with cross-goroutine surface: the sharded experiment
# harness, the simulator substrate it fans out over, the real-UDP
# runtime (whose loopback E2E runs 64 concurrent flows), and the
# parallel model checker. One engine per goroutine is the contract;
# -race pins it, including through BenchmarkE11MultiFlow. -shuffle=on
# surfaces test-order dependencies while we're paying for the rerun.
race:
	$(GO) test -race -shuffle=on ./internal/harness/ ./internal/netsim/ ./internal/arq/ ./internal/rtnet/ ./internal/verify/
	$(GO) test -run '^$$' -bench BenchmarkE11MultiFlow -benchtime 1x -race .

# Seeded chaos soak (DESIGN.md §13): 64 loopback flows under
# Gilbert-Elliott burst loss, a partition that heals, a jitter ramp and
# a mid-run server crash/restart, under the race detector. Asserts
# every graceful-degradation counter (drop_fault, rto_backoffs, sheds,
# panics_recovered, flows_expired) moved and that crash-straddling
# transfers terminate. Deterministic schedule, seed 42.
chaos:
	$(GO) test -race -run TestChaosSoak -count=1 -v ./internal/rtnet/

# Model-checking gate: exhaustively verify every machine spec in
# examples/specs/ (closed over its full stimulus domain) plus the
# built-in stop-and-wait / Go-Back-N / selective-repeat models against
# their expected verdicts — clean configurations must stay clean,
# seeded bugs must keep being found. `verify-full` adds the flagship
# 700k-state GBN configuration (~30s on one vCPU) that the sequential
# checker cannot finish in comparable time; CI runs the full set.
verify:
	$(GO) run ./cmd/protoverify

verify-full:
	$(GO) run ./cmd/protoverify -full

# Documentation references must resolve: every `DESIGN.md §N` citation
# in Go sources names a real section of DESIGN.md.
docscheck:
	$(GO) run ./internal/tools/docscheck

# One iteration per benchmark: a smoke pass that keeps every benchmark
# compiling and runnable without burning CI minutes. Use `make benchfull`
# for real numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

benchfull:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# The tier-1 hot-path benchmark set, recorded as machine-readable JSON
# (BENCH_hotpath.json) so future PRs can diff the trajectory. CI uploads
# the file as an artifact on every run.
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 2s -out BENCH_hotpath.json

# Regression guard: run the hot-path set fresh and fail on any >25%
# ns/op regression against the committed trajectory (or on a guarded
# benchmark going missing — renames must regenerate BENCH_hotpath.json).
# RTNetReusePort is recorded in the trajectory but not guarded: it is a
# shard-scaling diagnostic whose ns/op depends on host topology and
# scheduler contention (on a single-vCPU runner it swings tens of
# percent run to run), not a hot-path latency pin. benchdiff also
# downgrades the gate to advisory when the recorded CPU model differs
# from the runner's — though virtualised hosts reporting one generic
# CPU string can still alias distinct physical machines; if the gate
# flaps on identical-looking CPUs, regenerate the baseline on the
# runner class that enforces it.
bench-diff:
	$(GO) run ./cmd/benchjson -benchtime 2s -out .bench_fresh.json
	$(GO) run ./internal/tools/benchdiff -old BENCH_hotpath.json -new .bench_fresh.json -max-regress 25 \
		-match '^Benchmark(CompiledVsTreeWalk|AblationCodecPath|AblationInterpVsCodegen|AblationChecksums|RTNetLoopback|Sum8|Inet16|TimerChurn|AggregateInto|ObsCounterAdd|ObsHistObserve|ObsRingRecord|ObsGaugeSet|VerifyStates|SessionBeatTick|SessionGateData|SessionSnapshotAppend)'

# Allocation gate: the slot codec, the AOT-generated codec hot paths
# (AppendEncode / DecodeInto) and flat machine dispatch, the rtnet
# steady-state loops, the timing wheel's churn path, the harness
# metrics merge, the obs write paths (counter add, histogram observe,
# ring-trace record) and the session steady state (heartbeat tick,
# established-peer data dispatch, snapshot append) must report
# 0 allocs/op. Regressions fail here, not in the narrative.
allocscheck:
	$(GO) run ./cmd/benchjson -bench 'AblationCodecPath/slot|AblationCodecPath/generated-append-encode|AblationCodecPath/generated-decode-into|AblationInterpVsCodegen/flat-machine|RTNetLoopback|TimerChurn/wheel|AggregateInto|ObsCounterAdd|ObsHistObserve|ObsRingRecord|ObsGaugeSet|SessionBeatTick|SessionGateData|SessionSnapshotAppend' \
		-benchtime 30000x -require-zero 'slot|generated-append-encode|generated-decode-into|flat-machine|RTNetLoopback|TimerChurn/wheel|AggregateInto|ObsCounterAdd|ObsHistObserve|ObsRingRecord|ObsGaugeSet|SessionBeatTick|SessionGateData|SessionSnapshotAppend' -out /dev/null

# Fuzz smoke: ~30s of native fuzzing per target against the committed
# hostile corpora (testdata/fuzz). Minimization is capped — on small
# runners the default 60s-per-input minimizer would eat the whole
# budget the moment anything interesting surfaces.
fuzz-smoke:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzProgramDecode -fuzztime 30s -fuzzminimizetime 10x
	$(GO) test ./internal/dsl/ -run '^$$' -fuzz FuzzParse -fuzztime 30s -fuzzminimizetime 10x
	$(GO) test ./internal/verify/ -run '^$$' -fuzz FuzzStateCanon -fuzztime 30s -fuzzminimizetime 10x
	$(GO) test ./internal/session/ -run '^$$' -fuzz FuzzSessionFrame -fuzztime 30s -fuzzminimizetime 10x

lint: vet fmtcheck

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

clean:
	$(GO) clean ./...
