//go:generate go run protodsl/cmd/pdslc gen -emit go -pkg gen -builtin-ipv4 -o ipv4_gen.go

package gen
