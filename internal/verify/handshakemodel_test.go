package verify

import "testing"

func hsExplore(t *testing.T, opts HSOptions) *Result {
	t.Helper()
	sys, err := BuildHandshake(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Explore(sys, Options{
		MaxStates:            3_000_000,
		Invariants:           []Invariant{HSInvariant()},
		StopAtFirstViolation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated {
		t.Fatalf("truncated at %d states", rep.States)
	}
	return rep
}

// TestHandshakeModelVerdicts pins the lifecycle gate's teeth: the clean
// model satisfies HSInvariant across channel regimes, and each seeded
// lifecycle bug is caught.
func TestHandshakeModelVerdicts(t *testing.T) {
	for _, tc := range []struct {
		name     string
		opts     HSOptions
		wantViol bool
	}{
		{"clean/fifo", HSOptions{Capacity: 2}, false},
		{"clean/lossy", HSOptions{Capacity: 2, Lossy: true}, false},
		{"clean/lossy+reorder", HSOptions{Capacity: 2, Lossy: true, Reorder: true}, false},
		{"clean/beats", HSOptions{Capacity: 1, Beats: true}, false},
		{"clean/reincarnate+reorder", HSOptions{Capacity: 2, Reorder: true, Reincarnate: true}, false},
		{"halfopen-leak", HSOptions{Capacity: 2, Lossy: true, Mutant: MutantHalfOpenLeak}, true},
		{"accept-any-cookie", HSOptions{Capacity: 2, Lossy: true, Mutant: MutantAcceptAnyCookie}, true},
		{"no-timewait", HSOptions{Capacity: 2, Reorder: true, Reincarnate: true, Mutant: MutantNoTimeWait}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep := hsExplore(t, tc.opts)
			t.Logf("states=%d trans=%d viol=%d", rep.States, rep.Transitions, len(rep.Violations))
			if got := len(rep.Violations) > 0; got != tc.wantViol {
				for i, v := range rep.Violations {
					if i == 3 {
						break
					}
					t.Log(v.String())
				}
				t.Fatalf("violations=%d, want violations=%v", len(rep.Violations), tc.wantViol)
			}
		})
	}
}

// TestHandshakeModelOptionValidation: invalid combinations are rejected
// at build time, not silently weakened.
func TestHandshakeModelOptionValidation(t *testing.T) {
	if _, err := BuildHandshake(HSOptions{Capacity: 0}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := BuildHandshake(HSOptions{Capacity: 1, Reincarnate: true, Lossy: true}); err == nil {
		t.Error("lossy reincarnation accepted (quiescence guard would strand)")
	}
	if _, err := BuildHandshake(HSOptions{Capacity: 1, Mutant: MutantNoTimeWait}); err == nil {
		t.Error("MutantNoTimeWait without Reincarnate accepted (unobservable)")
	}
}
