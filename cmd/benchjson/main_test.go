package main

import "testing"

const sampleOutput = `goos: linux
goarch: amd64
pkg: protodsl
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAblationCodecPath/slot-append-encode    	10080992	       122.7 ns/op	       0 B/op	       0 allocs/op
BenchmarkAblationCodecPath/layout-decode         	 1987662	       609.9 ns/op	    1472 B/op	       4 allocs/op
BenchmarkRTNetLoopback    	   30000	      5344 ns/op	  95.80 MB/s	       9 B/op	       0 allocs/op
PASS
ok  	protodsl	12.3s
`

func TestParseBench(t *testing.T) {
	results, cpu := parseBench(sampleOutput)
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", cpu)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkAblationCodecPath/slot-append-encode" ||
		r.Iterations != 10080992 || r.NsPerOp != 122.7 || r.BPerOp != 0 || r.AllocsPerOp != 0 {
		t.Fatalf("first result: %+v", r)
	}
	if r := results[1]; r.BPerOp != 1472 || r.AllocsPerOp != 4 {
		t.Fatalf("second result: %+v", r)
	}
	if r := results[2]; r.MBPerS != 95.80 || r.NsPerOp != 5344 || r.AllocsPerOp != 0 {
		t.Fatalf("third result: %+v", r)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	results, _ := parseBench("PASS\nok \tprotodsl\t0.1s\n")
	if len(results) != 0 {
		t.Fatalf("parsed %d results from non-benchmark output", len(results))
	}
}
