package faults

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestValidateRejectsBadSchedules(t *testing.T) {
	cases := []struct {
		name string
		sch  Schedule
	}{
		{"probability above one", Schedule{Gilbert: &GilbertElliott{PGoodBad: 1.5}}},
		{"negative probability", Schedule{Gilbert: &GilbertElliott{LossBad: -0.1}}},
		{"empty window", Schedule{Events: []Event{{Kind: Partition, From: ms(10), Until: ms(10)}}}},
		{"inverted window", Schedule{Events: []Event{{Kind: Blackhole, From: ms(20), Until: ms(10)}}}},
		{"unknown kind", Schedule{Events: []Event{{Kind: "meteor", From: 0, Until: ms(10)}}}},
		{"spike without delay", Schedule{Events: []Event{{Kind: DelaySpike, From: 0, Until: ms(10)}}}},
	}
	for _, tc := range cases {
		if err := tc.sch.Validate(); !errors.Is(err, ErrSchedule) {
			t.Errorf("%s: Validate() = %v, want ErrSchedule", tc.name, err)
		}
		if _, err := tc.sch.Instance(0); err == nil {
			t.Errorf("%s: Instance accepted an invalid schedule", tc.name)
		}
	}
}

func TestPartitionWindowDropsEverything(t *testing.T) {
	sch := Schedule{Events: []Event{{Kind: Partition, From: ms(100), Until: ms(200)}}}
	inj := sch.MustInstance(0)
	for _, tc := range []struct {
		at   time.Duration
		drop bool
	}{
		{ms(99), false}, {ms(100), true}, {ms(150), true}, {ms(199), true}, {ms(200), false},
	} {
		if v := inj.Apply(tc.at); v.Drop != tc.drop {
			t.Errorf("at %s: drop=%v, want %v", tc.at, v.Drop, tc.drop)
		}
	}
	if inj.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", inj.Dropped())
	}
}

func TestGilbertElliottBurstsAndRate(t *testing.T) {
	// Mean burst 1/PBadGood = 10 packets; stationary bad share
	// PGoodBad/(PGoodBad+PBadGood) = 1/11 ≈ 0.09 → loss ≈ 9%.
	sch := Schedule{
		Seed:    7,
		Gilbert: &GilbertElliott{PGoodBad: 0.01, PBadGood: 0.1, LossGood: 0, LossBad: 1},
	}
	inj := sch.MustInstance(0)
	const n = 200000
	drops, bursts, run, maxRun := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		if inj.Apply(time.Duration(i) * time.Microsecond).Drop {
			drops++
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			if run > 0 {
				bursts++
			}
			run = 0
		}
	}
	rate := float64(drops) / n
	if math.Abs(rate-1.0/11) > 0.02 {
		t.Errorf("loss rate %.3f, want ≈ %.3f", rate, 1.0/11)
	}
	meanBurst := float64(drops) / float64(bursts)
	if meanBurst < 5 || meanBurst > 20 {
		t.Errorf("mean burst length %.1f, want ≈ 10 (bursty, not i.i.d.)", meanBurst)
	}
	if maxRun < 15 {
		t.Errorf("max burst %d packets: losses are not bursting", maxRun)
	}
}

func TestDelaySpikeAndJitterRamp(t *testing.T) {
	sch := Schedule{
		Seed: 3,
		Events: []Event{
			{Kind: DelaySpike, From: ms(0), Until: ms(100), Extra: ms(40)},
			{Kind: JitterRamp, From: ms(200), Until: ms(400), Extra: ms(50)},
		},
	}
	inj := sch.MustInstance(0)
	if v := inj.Apply(ms(50)); v.Delay != ms(40) {
		t.Errorf("inside spike: delay %s, want 40ms", v.Delay)
	}
	if v := inj.Apply(ms(150)); v.Delay != 0 {
		t.Errorf("between windows: delay %s, want 0", v.Delay)
	}
	// The ramp's ceiling at its midpoint is Extra/2: draws must stay
	// under it, and over many draws approach it.
	var max time.Duration
	for i := 0; i < 1000; i++ {
		v := inj.Apply(ms(300))
		if v.Delay > ms(25) {
			t.Fatalf("ramp midpoint delay %s exceeds 25ms ceiling", v.Delay)
		}
		if v.Delay > max {
			max = v.Delay
		}
	}
	if max < ms(20) {
		t.Errorf("ramp midpoint max draw %s: jitter not reaching its ceiling", max)
	}
}

func TestReplayIsBitIdentical(t *testing.T) {
	sch := Schedule{
		Seed:    42,
		Gilbert: &GilbertElliott{PGoodBad: 0.05, PBadGood: 0.2, LossBad: 0.9},
		Events: []Event{
			{Kind: Partition, From: ms(100), Until: ms(150)},
			{Kind: JitterRamp, From: ms(200), Until: ms(300), Extra: ms(10)},
		},
	}
	a, b := sch.MustInstance(0), sch.MustInstance(0)
	other := sch.MustInstance(1)
	diverged := false
	for i := 0; i < 5000; i++ {
		at := time.Duration(i) * 100 * time.Microsecond
		va, vb := a.Apply(at), b.Apply(at)
		if va != vb {
			t.Fatalf("packet %d: same schedule+id diverged: %+v vs %+v", i, va, vb)
		}
		if va != other.Apply(at) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("instance ids 0 and 1 produced identical streams: per-shard seeding broken")
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	sch := &Schedule{
		Seed:    99,
		Gilbert: &GilbertElliott{PGoodBad: 0.02, PBadGood: 0.25, LossBad: 0.95},
		Events: []Event{
			{Kind: Partition, From: ms(500), Until: ms(900)},
			{Kind: DelaySpike, From: ms(1000), Until: ms(1200), Extra: ms(30)},
			{Kind: PeerCrash, From: ms(2000), Until: ms(2500)},
		},
	}
	raw, err := json.Marshal(sch)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != sch.Seed || len(back.Events) != len(sch.Events) ||
		*back.Gilbert != *sch.Gilbert || back.Events[1].Extra != ms(30) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	// The two injectors must then replay identically.
	a, b := sch.MustInstance(0), back.MustInstance(0)
	for i := 0; i < 2000; i++ {
		at := time.Duration(i) * time.Millisecond
		if a.Apply(at) != b.Apply(at) {
			t.Fatalf("packet %d: parsed schedule diverged from original", i)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"seed":1,"gilbrt":{}}`)); !errors.Is(err, ErrSchedule) {
		t.Errorf("typo'd field accepted: %v", err)
	}
}

func TestCrashesExtractsKillList(t *testing.T) {
	sch := Schedule{Events: []Event{
		{Kind: Partition, From: 0, Until: ms(10)},
		{Kind: PeerCrash, From: ms(20), Until: ms(30)},
		{Kind: PeerCrash, From: ms(50), Until: ms(60)},
	}}
	crashes := sch.Crashes()
	if len(crashes) != 2 || crashes[0].From != ms(20) || crashes[1].From != ms(50) {
		t.Errorf("Crashes() = %+v", crashes)
	}
	// Per-packet injection ignores crash windows.
	inj := sch.MustInstance(0)
	if v := inj.Apply(ms(25)); v.Drop || v.Delay != 0 {
		t.Errorf("peer_crash window affected packet verdict: %+v", v)
	}
}
