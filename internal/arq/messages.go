// Package arq implements the paper's worked example (§3.4): a simple
// stop-and-wait transport protocol with automatic repeat request, built
// entirely on the DSL framework — wire-described packets, a statically
// checked state machine executed by the fsm interpreter, validation
// witnesses for received packets, and the typed-state (fsmtyped) variant
// that carries the transition discipline in Go's type system.
//
// A go-back-N extension (window > 1) is provided as the "further work"
// the paper sketches for richer protocols.
package arq

import (
	"fmt"

	"protodsl/internal/expr"
	"protodsl/internal/proof"
	"protodsl/internal/wire"
)

// PacketMessage returns the paper's data packet layout:
//
//	Pkt : Byte(seq) → Byte(chk) → List Byte(payload)
//
// realised on the wire as seq:8, chk:8 (sum8 over the whole packet with
// chk zeroed), a 16-bit payload length, and the payload bytes.
func PacketMessage() *wire.Message {
	return &wire.Message{
		Name: "Packet",
		Doc:  "ARQ data packet (paper §3.4): sequence number, checksum, payload.",
		Fields: []wire.Field{
			{Name: "seq", Kind: wire.FieldUint, Bits: 8, Doc: "sequence number"},
			{Name: "chk", Kind: wire.FieldUint, Bits: 8, Doc: "sum8 checksum",
				Compute: &wire.Compute{Kind: wire.ComputeChecksum, Algo: wire.ChecksumSum8}},
			{Name: "paylen", Kind: wire.FieldUint, Bits: 16, Doc: "payload length in bytes"},
			{Name: "payload", Kind: wire.FieldBytes, LenKind: wire.LenField, LenField: "paylen",
				Doc: "application payload"},
		},
	}
}

// AckMessage returns the acknowledgement layout: the acknowledged
// sequence number protected by the same checksum discipline.
func AckMessage() *wire.Message {
	return &wire.Message{
		Name: "Ack",
		Doc:  "ARQ acknowledgement: the acknowledged sequence number.",
		Fields: []wire.Field{
			{Name: "seq", Kind: wire.FieldUint, Bits: 8, Doc: "acknowledged sequence number"},
			{Name: "chk", Kind: wire.FieldUint, Bits: 8, Doc: "sum8 checksum",
				Compute: &wire.Compute{Kind: wire.ComputeChecksum, Algo: wire.ChecksumSum8}},
		},
	}
}

// Codec bundles the compiled layouts for the protocol's messages.
type Codec struct {
	Packet *wire.Layout
	Ack    *wire.Layout
}

// NewCodec compiles the protocol's message layouts.
func NewCodec() (*Codec, error) {
	p, err := wire.Compile(PacketMessage())
	if err != nil {
		return nil, fmt.Errorf("compile Packet: %w", err)
	}
	a, err := wire.Compile(AckMessage())
	if err != nil {
		return nil, fmt.Errorf("compile Ack: %w", err)
	}
	return &Codec{Packet: p, Ack: a}, nil
}

// Packet is the decoded, validated form of a data packet. Values are only
// constructed by DecodePacket (which verifies the checksum and length) —
// the ChkPacket discipline of §3.3.
type Packet struct {
	Seq     uint8
	Payload []byte
}

// Ack is the decoded, validated form of an acknowledgement.
type Ack struct {
	Seq uint8
}

// CheckedPacket is a validation witness for a received packet: possession
// implies the wire checksum and length checks passed.
type CheckedPacket = proof.Checked[Packet]

// CheckedAck is a validation witness for a received acknowledgement.
type CheckedAck = proof.Checked[Ack]

// packetWitness re-verifies nothing: wire.Decode already established the
// checks, so the validator's checks are structural (they document what
// the certificate asserts). The heavyweight validation lives in Decode.
var packetWitness = proof.NewValidator[Packet]("arq.Packet",
	proof.Check[Packet]{Name: "checksum-verified", Fn: func(Packet) error { return nil }},
	proof.Check[Packet]{Name: "length-verified", Fn: func(Packet) error { return nil }},
)

var ackWitness = proof.NewValidator[Ack]("arq.Ack",
	proof.Check[Ack]{Name: "checksum-verified", Fn: func(Ack) error { return nil }},
)

// EncodePacket serialises a packet; the checksum and length fields are
// computed by the wire layer.
func (c *Codec) EncodePacket(seq uint8, payload []byte) ([]byte, error) {
	return c.Packet.Encode(map[string]expr.Value{
		"seq":     expr.U8(uint64(seq)),
		"payload": expr.Bytes(payload),
	})
}

// DecodePacket parses and validates a received data packet. A non-nil
// witness is returned only when every wire-level check (checksum, length
// consistency, no trailing bytes) passed; "no processing occurs on
// unverified packets" (§3.4 guarantee 2) because processing code takes
// the witness, not raw bytes.
func (c *Codec) DecodePacket(data []byte) (CheckedPacket, error) {
	vals, err := c.Packet.Decode(data)
	if err != nil {
		return CheckedPacket{}, err
	}
	p := Packet{
		Seq:     uint8(vals["seq"].AsUint()),
		Payload: vals["payload"].AsBytes(),
	}
	return packetWitness.Validate(p)
}

// EncodeAck serialises an acknowledgement.
func (c *Codec) EncodeAck(seq uint8) ([]byte, error) {
	return c.Ack.Encode(map[string]expr.Value{"seq": expr.U8(uint64(seq))})
}

// DecodeAck parses and validates a received acknowledgement.
func (c *Codec) DecodeAck(data []byte) (CheckedAck, error) {
	vals, err := c.Ack.Decode(data)
	if err != nil {
		return CheckedAck{}, err
	}
	return ackWitness.Validate(Ack{Seq: uint8(vals["seq"].AsUint())})
}

// packetValue converts a checked packet back to an expression-language
// message value for delivery to the fsm interpreter.
func packetValue(p CheckedPacket) expr.Value {
	v := p.Value()
	return expr.Msg("Packet", map[string]expr.Value{
		"seq":     expr.U8(uint64(v.Seq)),
		"chk":     expr.U8(0), // already verified; not consulted by guards
		"paylen":  expr.U16(uint64(len(v.Payload))),
		"payload": expr.Bytes(v.Payload),
	})
}

// ackValue converts a checked ack to a message value.
func ackValue(a CheckedAck) expr.Value {
	return expr.Msg("Ack", map[string]expr.Value{
		"seq": expr.U8(uint64(a.Value().Seq)),
		"chk": expr.U8(0),
	})
}
