package obs

import (
	"testing"
	"time"
)

// The allocscheck gate pins these write paths at 0 allocs/op: they are
// the exact operations the rtnet shard loops and the simulator hot path
// execute per frame (counter add, histogram observe, ring record) or
// per timer rearm (gauge set), so any allocation here is an allocation
// per packet.

func BenchmarkObsCounterAdd(b *testing.B) {
	st := New(4, 0)
	sh := st.Shard(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.Add(FramesIn, 1)
		sh.Add(BytesIn, 512)
	}
}

func BenchmarkObsHistObserve(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i&0xffff) * time.Microsecond)
	}
}

func BenchmarkObsRingRecord(b *testing.B) {
	var r Ring
	r.arm(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(time.Duration(i), KindSend, uint8(i), i&0x3ff, 1, 2)
	}
}

func BenchmarkObsGaugeSet(b *testing.B) {
	st := New(4, 0)
	sh := st.Shard(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.SetGauge(GaugeRTO, int64(i+1))
	}
	if sh.Gauge(GaugeRTO) == 0 {
		b.Fatal("gauge never stored")
	}
}

func BenchmarkObsRingSnapshot(b *testing.B) {
	var r Ring
	r.arm(1024)
	for i := 0; i < 2048; i++ {
		r.Record(time.Duration(i), KindSend, uint8(i), i&0x3ff, 1, 2)
	}
	var buf []TraceEntry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = r.Snapshot(buf)
	}
	if len(buf) == 0 {
		b.Fatal("empty snapshot")
	}
}
