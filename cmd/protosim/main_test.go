package main

import (
	"bytes"
	"strings"
	"testing"

	"protodsl/internal/arq"
	"protodsl/internal/netsim"
	"protodsl/internal/rtnet"
)

func TestStopAndWaitRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-payloads", "10", "-size", "32", "-loss", "0.2", "-seed", "3",
		"-rto", "15ms", "-retries", "40",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"stop-and-wait transfer", "ok: true", "delivered: 10/10"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestGoBackNRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-payloads", "20", "-window", "8", "-delay", "10ms", "-loss", "0.05",
		"-rto", "80ms", "-retries", "40",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "go-back-N transfer (window 8)") || !strings.Contains(s, "delivered: 20/20") {
		t.Errorf("output:\n%s", s)
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-window", "not-a-number"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestConnectModeAgainstInProcessServer runs the -connect client path
// against an in-process rtnet server: the cmd-level half of the
// loopback end-to-end demo (cmd/protoserve has the server half).
func TestConnectModeAgainstInProcessServer(t *testing.T) {
	server, err := rtnet.Listen("127.0.0.1:0", rtnet.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	err = server.Serve(func(rt netsim.Runtime, port netsim.Port, peer netsim.Addr, flow byte) func(netsim.Addr, []byte) {
		r, err := arq.NewGBNReceiver(port, peer)
		if err != nil {
			return nil
		}
		return r.OnDatagram
	})
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err = run([]string{
		"-connect", string(server.Addr()), "-flows", "8", "-variant", "gbn",
		"-payloads", "10", "-size", "64", "-window", "8",
		"-rto", "100ms", "-retries", "20",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"real-network gbn transfer", "flows: 8 (8 ok)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestConnectRejectsSimOnlyFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-connect", "127.0.0.1:1", "-loss", "0.2"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-loss") {
		t.Fatalf("sim-only flag with -connect not rejected: %v", err)
	}
}
