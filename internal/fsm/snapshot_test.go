package fsm

import (
	"bytes"
	"encoding/binary"
	"testing"

	"protodsl/internal/expr"
	"protodsl/internal/wire"
)

func snapshotSpec() *Spec {
	return &Spec{
		Name: "Snap",
		Vars: []Var{
			{Name: "seq", Type: expr.TU8},
			{Name: "last", Type: expr.Type{Kind: expr.KindMsg, MsgName: "Pkt"}},
		},
		States: []State{
			{Name: "Idle", Init: true},
			{Name: "Busy"},
		},
		Events: []Event{
			{Name: "GO", Params: []Param{{Name: "p", Type: expr.Type{Kind: expr.KindMsg, MsgName: "Pkt"}}}},
			{Name: "STOP"},
		},
		Transitions: []Transition{
			{Name: "go", From: "Idle", Event: "GO", To: "Busy",
				Assigns: []Assign{
					{Var: "seq", Expr: expr.MustParse("(seq + 1) % 16")},
					{Var: "last", Expr: expr.MustParse("p")},
				}},
			{Name: "stop", From: "Busy", Event: "STOP", To: "Idle"},
		},
		Ignores: []Ignore{
			{State: "Idle", Event: "STOP"},
			{State: "Busy", Event: "GO"},
		},
		Messages: map[string]*wire.Message{
			"Pkt": {Name: "Pkt", Fields: []wire.Field{
				{Name: "seq", Kind: wire.FieldUint, Bits: 8},
			}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	prog, err := CompileSpec(snapshotSpec())
	if err != nil {
		t.Fatal(err)
	}
	m := prog.NewMachine()
	other := prog.NewMachine()

	pkt := func(seq uint64) map[string]expr.Value {
		return map[string]expr.Value{"p": expr.Msg("Pkt", map[string]expr.Value{"seq": expr.U8(seq)})}
	}
	steps := []struct {
		event string
		args  map[string]expr.Value
	}{
		{"GO", pkt(3)}, {"STOP", nil}, {"GO", pkt(7)},
	}
	for i, s := range steps {
		if _, err := m.Step(s.event, s.args); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		enc := m.AppendState(nil)
		rest, err := other.RestoreState(enc)
		if err != nil {
			t.Fatalf("step %d: restore: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("step %d: %d leftover bytes", i, len(rest))
		}
		if other.State() != m.State() || other.StateKey() != m.StateKey() {
			t.Fatalf("step %d: restored %q (%s), want %q (%s)",
				i, other.State(), other.StateKey(), m.State(), m.StateKey())
		}
		// Re-encoding the restored machine must reproduce the bytes: the
		// encoding is the state's identity in the visited table.
		if re := other.AppendState(nil); !bytes.Equal(re, enc) {
			t.Fatalf("step %d: re-encode differs: %x vs %x", i, re, enc)
		}
	}
}

func TestSnapshotRestoredMachineSteps(t *testing.T) {
	prog, err := CompileSpec(snapshotSpec())
	if err != nil {
		t.Fatal(err)
	}
	m := prog.NewMachine()
	args := map[string]expr.Value{"p": expr.Msg("Pkt", map[string]expr.Value{"seq": expr.U8(1)})}
	if _, err := m.Step("GO", args); err != nil {
		t.Fatal(err)
	}
	enc := m.AppendState(nil)

	// A restored machine must continue exactly like the original,
	// including wrap-around arithmetic on the restored widths.
	other := prog.NewMachine()
	if _, err := other.RestoreState(enc); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := m.Step("STOP", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := other.Step("STOP", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Step("GO", args); err != nil {
			t.Fatal(err)
		}
		if _, err := other.Step("GO", args); err != nil {
			t.Fatal(err)
		}
		if m.StateKey() != other.StateKey() {
			t.Fatalf("iteration %d: diverged: %s vs %s", i, m.StateKey(), other.StateKey())
		}
	}
}

func TestSnapshotRestoreErrors(t *testing.T) {
	prog, err := CompileSpec(snapshotSpec())
	if err != nil {
		t.Fatal(err)
	}
	m := prog.NewMachine()
	enc := m.AppendState(nil)

	if _, err := m.RestoreState(nil); err == nil {
		t.Error("expected error for empty input")
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 0x7F // state index out of range
	if _, err := m.RestoreState(bad); err == nil {
		t.Error("expected error for bad state index")
	}
	if _, err := m.RestoreState(enc[:len(enc)-1]); err == nil {
		t.Error("expected error for truncated input")
	}
	// A bool where a uint variable is expected: kind mismatch.
	wrong := binary.AppendUvarint(nil, 0)
	wrong = expr.Bool(true).AppendCanon(wrong)
	wrong = expr.Msg("Pkt", nil).AppendCanon(wrong)
	if _, err := m.RestoreState(wrong); err == nil {
		t.Error("expected error for kind mismatch")
	}
}
