package wire

import (
	"bytes"
	"testing"

	"protodsl/internal/expr"
)

// FuzzProgramDecode throws arbitrary bytes at the slot-compiled decoder
// for the paper's ARQ packet layout and checks three properties:
//
//  1. DecodeInto never panics, whatever the input.
//  2. The slot program and the map-based compatibility codec agree on
//     accept/reject (the fuzz twin of the differential tests in
//     internal/dsl).
//  3. Any accepted frame re-encodes to exactly the input bytes — the
//     layout has no redundant representations, so decode∘encode must be
//     the identity on valid frames.
//
// Seed corpus: testdata/fuzz/FuzzProgramDecode (hostile frames — short,
// truncated-length, bad-checksum, trailing-bytes).
func FuzzProgramDecode(f *testing.F) {
	l := arqPacket(f)
	prog := l.Program()

	// A valid frame, plus hostile mutations of it.
	valid, err := l.Encode(map[string]expr.Value{
		"seq":     expr.U8(7),
		"payload": expr.Bytes([]byte("hello")),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(valid[:3])                     // truncated header
	f.Add(append(bytes.Clone(valid), 0)) // trailing byte
	bad := bytes.Clone(valid)
	bad[1] ^= 0xff // checksum mismatch
	f.Add(bad)
	short := bytes.Clone(valid)
	short[3] = 200 // length field promises more payload than present
	f.Add(short)

	f.Fuzz(func(t *testing.T, data []byte) {
		frame := prog.NewFrame()
		// Both decoders briefly zero/restore checksum bytes in place, so
		// each gets its own copy.
		progErr := prog.DecodeInto(frame, bytes.Clone(data))
		mapVals, mapErr := l.Decode(bytes.Clone(data))

		if (progErr == nil) != (mapErr == nil) {
			t.Fatalf("decoders disagree on %x: program=%v map=%v", data, progErr, mapErr)
		}
		if progErr != nil {
			return
		}
		for _, name := range []string{"seq", "paylen"} {
			slot, _ := prog.Slot(name)
			if got, want := frame.Get(slot).AsUint(), mapVals[name].AsUint(); got != want {
				t.Fatalf("%s: program=%d map=%d", name, got, want)
			}
		}
		slot, _ := prog.Slot("payload")
		if got, want := frame.Get(slot).RawBytes(), mapVals["payload"].RawBytes(); !bytes.Equal(got, want) {
			t.Fatalf("payload: program=%x map=%x", got, want)
		}

		reenc, err := prog.AppendEncode(nil, frame)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("decode/encode not identity: in=%x out=%x", data, reenc)
		}
	})
}
