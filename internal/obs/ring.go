package obs

import (
	"sync/atomic"
	"time"
)

// Kind classifies a trace entry. The values mirror the simulator's
// TraceKind so the two convert with a cast.
type Kind uint8

const (
	KindSend    Kind = 1 + iota // frame handed to the link/socket
	KindDeliver                 // frame delivered to a receiver
	KindDrop                    // frame discarded (any drop reason)
	KindDup                     // simulated duplicate injected
	KindCorrupt                 // simulated corruption injected
)

var kindNames = [...]string{0: "?", KindSend: "send", KindDeliver: "deliver", KindDrop: "drop", KindDup: "dup", KindCorrupt: "corrupt"}

// String returns the kind's lower-case name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// TraceEntry is one decoded ring slot.
type TraceEntry struct {
	Seq  uint64        // global sequence number (monotonic per ring)
	At   time.Duration // runtime timestamp (ns since sim/node start)
	Kind Kind
	Flow uint8  // mux flow id, 0 when the layer has none
	From uint16 // interned endpoint ids (0 = unknown); see netsim
	To   uint16
	Size int // frame size in bytes
}

// ringWords is the number of atomic words per slot: a sequence/publish
// word, the timestamp, and a packed size/kind/flow/from/to word.
const ringWords = 3

// Ring is a bounded, drop-oldest packet-trace ring. Record is three
// atomic stores plus an atomic add — no locks, no allocations — and is
// safe against a concurrent Snapshot through a per-entry seqlock: a
// writer first invalidates the slot's sequence word, stores the
// payload, then publishes seq+1; the reader discards any slot whose
// sequence word does not match the expected sequence both before and
// after copying the payload. With concurrent writers a slot is only
// misattributed if one writer stalls for an entire ring lap between its
// stores, which is acceptable for a diagnostics stream.
//
// An unarmed ring (the zero value) discards records for the cost of one
// branch.
type Ring struct {
	head  atomic.Uint64 // next sequence number to write
	mask  uint64
	words []atomic.Uint64 // cap slots × ringWords
}

// arm allocates the ring with at least `slots` entries (rounded up to a
// power of two, minimum 8). Arming an already-armed ring is a no-op;
// arm must not race with Record.
func (r *Ring) arm(slots int) {
	if r.words != nil || slots <= 0 {
		return
	}
	n := 8
	for n < slots {
		n <<= 1
	}
	r.mask = uint64(n - 1)
	r.words = make([]atomic.Uint64, n*ringWords)
}

// Cap returns the ring's slot count (0 when unarmed).
func (r *Ring) Cap() int { return len(r.words) / ringWords }

// Recorded returns the total number of records ever written; subtract
// Cap for how many the drop-oldest policy has overwritten.
func (r *Ring) Recorded() uint64 { return r.head.Load() }

// Dropped returns how many entries drop-oldest has overwritten.
func (r *Ring) Dropped() uint64 {
	n := uint64(r.Cap())
	if h := r.head.Load(); h > n {
		return h - n
	}
	return 0
}

// Record appends one entry, overwriting the oldest once full.
func (r *Ring) Record(at time.Duration, kind Kind, flow uint8, size int, from, to uint16) {
	if r.words == nil {
		return
	}
	seq := r.head.Add(1) - 1
	base := (seq & r.mask) * ringWords
	w := r.words[base : base+ringWords : base+ringWords]
	w[0].Store(0) // invalidate while the slot is torn
	w[1].Store(uint64(at))
	w[2].Store(pack(kind, flow, size, from, to))
	w[0].Store(seq + 1) // publish
}

// Snapshot appends every currently-valid entry, oldest first, to dst
// and returns it. Entries being overwritten mid-read are skipped, not
// torn. dst is reused to keep the cold path from re-allocating on every
// scrape.
func (r *Ring) Snapshot(dst []TraceEntry) []TraceEntry {
	dst = dst[:0]
	if r.words == nil {
		return dst
	}
	head := r.head.Load()
	n := uint64(r.Cap())
	start := uint64(0)
	if head > n {
		start = head - n
	}
	for seq := start; seq < head; seq++ {
		base := (seq & r.mask) * ringWords
		w := r.words[base : base+ringWords : base+ringWords]
		if w[0].Load() != seq+1 {
			continue // still torn, or already lapped by a newer record
		}
		at := w[1].Load()
		packed := w[2].Load()
		if w[0].Load() != seq+1 {
			continue // overwritten while we copied
		}
		e := unpack(packed)
		e.Seq = seq
		e.At = time.Duration(at)
		dst = append(dst, e)
	}
	return dst
}

// pack squeezes kind/flow/size/from/to into one word:
// bits 0..23 size, 24..31 kind, 32..39 flow, 40..51 from, 52..63 to.
// Endpoint ids are interned per runtime and clamp at 12 bits — more
// than any simulator topology or rtnet shard set in this repo.
func pack(kind Kind, flow uint8, size int, from, to uint16) uint64 {
	if size < 0 {
		size = 0
	} else if size > 0xffffff {
		size = 0xffffff
	}
	const idMask = 0xfff
	return uint64(size) |
		uint64(kind)<<24 |
		uint64(flow)<<32 |
		uint64(from&idMask)<<40 |
		uint64(to&idMask)<<52
}

func unpack(w uint64) TraceEntry {
	const idMask = 0xfff
	return TraceEntry{
		Size: int(w & 0xffffff),
		Kind: Kind(w >> 24 & 0xff),
		Flow: uint8(w >> 32 & 0xff),
		From: uint16(w >> 40 & idMask),
		To:   uint16(w >> 52 & idMask),
	}
}
