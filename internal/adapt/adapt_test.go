package adapt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMembershipShapes(t *testing.T) {
	tri := Triangle(0, 5, 10)
	cases := []struct {
		x, want float64
	}{
		{-1, 0}, {0, 0}, {2.5, 0.5}, {5, 1}, {7.5, 0.5}, {10, 0}, {11, 0},
	}
	for _, c := range cases {
		if got := tri(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Triangle(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	trap := Trapezoid(0, 2, 8, 10)
	for _, c := range []struct{ x, want float64 }{
		{1, 0.5}, {2, 1}, {5, 1}, {8, 1}, {9, 0.5}, {10, 0},
	} {
		if got := trap(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Trapezoid(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	sl := ShoulderLeft(2, 4)
	if sl(1) != 1 || sl(5) != 0 || math.Abs(sl(3)-0.5) > 1e-9 {
		t.Error("ShoulderLeft wrong")
	}
	sr := ShoulderRight(2, 4)
	if sr(1) != 0 || sr(5) != 1 || math.Abs(sr(3)-0.5) > 1e-9 {
		t.Error("ShoulderRight wrong")
	}
}

// Property: all membership functions stay within [0, 1].
func TestQuickMembershipBounded(t *testing.T) {
	fns := []MemberFn{
		Triangle(0, 1, 2), Trapezoid(0, 1, 2, 3), ShoulderLeft(1, 2), ShoulderRight(1, 2),
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		for _, fn := range fns {
			mu := fn(x)
			if mu < 0 || mu > 1 || math.IsNaN(mu) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildTestEngine(t *testing.T) *Engine {
	t.Helper()
	in, err := NewVariable("x", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.AddTerm("low", ShoulderLeft(2, 6)); err != nil {
		t.Fatal(err)
	}
	if err := in.AddTerm("high", ShoulderRight(4, 8)); err != nil {
		t.Fatal(err)
	}
	out, err := NewVariable("y", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.AddTerm("small", Triangle(0, 20, 40)); err != nil {
		t.Fatal(err)
	}
	if err := out.AddTerm("large", Triangle(60, 80, 100)); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(out)
	if err := e.AddInput(in); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(Rule{If: []Cond{{"x", "low"}}, Then: Cond{"y", "small"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(Rule{If: []Cond{{"x", "high"}}, Then: Cond{"y", "large"}}); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestInference(t *testing.T) {
	e := buildTestEngine(t)
	lo, err := e.Infer(map[string]float64{"x": 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-20) > 1 {
		t.Errorf("Infer(x=1) = %g, want ~20 (centroid of 'small')", lo)
	}
	hi, err := e.Infer(map[string]float64{"x": 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hi-80) > 1 {
		t.Errorf("Infer(x=9) = %g, want ~80", hi)
	}
	mid, err := e.Infer(map[string]float64{"x": 5}) // both rules partially active
	if err != nil {
		t.Fatal(err)
	}
	if !(mid > lo && mid < hi) {
		t.Errorf("Infer(x=5) = %g, want between %g and %g", mid, lo, hi)
	}
}

func TestInferenceDeadZone(t *testing.T) {
	// When no rule activates, Infer returns the output-range midpoint.
	in, err := NewVariable("x", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.AddTerm("low", ShoulderLeft(2, 4)); err != nil {
		t.Fatal(err)
	}
	out, err := NewVariable("y", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.AddTerm("small", Triangle(0, 20, 40)); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(out)
	if err := e.AddInput(in); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(Rule{If: []Cond{{"x", "low"}}, Then: Cond{"y", "small"}}); err != nil {
		t.Fatal(err)
	}
	dead, err := e.Infer(map[string]float64{"x": 9})
	if err != nil {
		t.Fatal(err)
	}
	if dead != 50 {
		t.Errorf("dead-zone inference = %g, want midpoint 50", dead)
	}
}

func TestEngineValidation(t *testing.T) {
	e := buildTestEngine(t)
	if err := e.AddRule(Rule{If: []Cond{{"nope", "low"}}, Then: Cond{"y", "small"}}); err == nil {
		t.Error("unknown input accepted")
	}
	if err := e.AddRule(Rule{If: []Cond{{"x", "nope"}}, Then: Cond{"y", "small"}}); err == nil {
		t.Error("unknown term accepted")
	}
	if err := e.AddRule(Rule{If: []Cond{{"x", "low"}}, Then: Cond{"z", "small"}}); err == nil {
		t.Error("wrong output variable accepted")
	}
	if err := e.AddRule(Rule{If: []Cond{{"x", "low"}}, Then: Cond{"y", "nope"}}); err == nil {
		t.Error("unknown output term accepted")
	}
	if err := e.AddRule(Rule{Then: Cond{"y", "small"}}); err == nil {
		t.Error("empty antecedents accepted")
	}
	if _, err := e.Infer(map[string]float64{}); err == nil {
		t.Error("missing input accepted")
	}
	if _, err := NewVariable("bad", 5, 5); err == nil {
		t.Error("empty range accepted")
	}
	v, _ := NewVariable("v", 0, 1)
	if err := v.AddTerm("a", Triangle(0, 0.5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := v.AddTerm("a", Triangle(0, 0.5, 1)); err == nil {
		t.Error("duplicate term accepted")
	}
}

func TestRateControllerReactsToLoss(t *testing.T) {
	c, err := NewRateController(10, 1000, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Clean network: the rate should creep up.
	r0 := c.Rate()
	var r float64
	for i := 0; i < 10; i++ {
		r, err = c.Observe(0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if r <= r0 {
		t.Errorf("rate did not increase on clean network: %g -> %g", r0, r)
	}
	// Heavy loss: the rate must fall sharply.
	before := c.Rate()
	r, err = c.Observe(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if r >= before*0.9 {
		t.Errorf("rate did not cut under heavy loss: %g -> %g", before, r)
	}
	// Bounds respected.
	for i := 0; i < 50; i++ {
		r, _ = c.Observe(0.9)
	}
	if r < 10 {
		t.Errorf("rate fell below floor: %g", r)
	}
	for i := 0; i < 200; i++ {
		r, _ = c.Observe(0)
	}
	if r > 1000 {
		t.Errorf("rate exceeded ceiling: %g", r)
	}
}

func TestRateControllerValidation(t *testing.T) {
	if _, err := NewRateController(0, 10, 5); err == nil {
		t.Error("zero min accepted")
	}
	if _, err := NewRateController(10, 5, 7); err == nil {
		t.Error("inverted bounds accepted")
	}
	if _, err := NewRateController(10, 100, 5); err == nil {
		t.Error("initial below min accepted")
	}
}

// TestE6Shape: over a varying-capacity trace, the fuzzy sender beats the
// high fixed rate on loss and the low fixed rate on delivered quality —
// the qualitative claim behind §1.1's adaptation requirement.
func TestE6Shape(t *testing.T) {
	capacities := SteppedCapacity([]float64{800, 200, 600, 100, 900, 300}, 30)

	ctrl, err := NewRateController(50, 1000, 400)
	if err != nil {
		t.Fatal(err)
	}
	fuzzy, err := SimulateStream(capacities, FuzzySender{Controller: ctrl})
	if err != nil {
		t.Fatal(err)
	}
	fixedHigh, err := SimulateStream(capacities, FixedSender{RateValue: 800})
	if err != nil {
		t.Fatal(err)
	}
	fixedLow, err := SimulateStream(capacities, FixedSender{RateValue: 100})
	if err != nil {
		t.Fatal(err)
	}

	if fuzzy.AvgLoss >= fixedHigh.AvgLoss {
		t.Errorf("fuzzy loss %.3f not better than fixed-high %.3f", fuzzy.AvgLoss, fixedHigh.AvgLoss)
	}
	if fuzzy.AvgDelivered <= fixedLow.AvgDelivered {
		t.Errorf("fuzzy delivered %.1f not better than fixed-low %.1f",
			fuzzy.AvgDelivered, fixedLow.AvgDelivered)
	}
	if len(fuzzy.Steps) != len(capacities) {
		t.Errorf("steps = %d", len(fuzzy.Steps))
	}
}

func TestAIMDSender(t *testing.T) {
	s := &AIMDSender{RateValue: 100, Min: 10, Max: 1000, Add: 10, Mul: 0.5}
	r, err := s.NextRate(0)
	if err != nil || r != 110 {
		t.Errorf("additive increase: %g, %v", r, err)
	}
	r, _ = s.NextRate(0.5)
	if r != 55 {
		t.Errorf("multiplicative decrease: %g", r)
	}
	for i := 0; i < 10; i++ {
		r, _ = s.NextRate(0.9)
	}
	if r < 10 {
		t.Errorf("AIMD floor: %g", r)
	}
}

func TestSimulateStreamEdges(t *testing.T) {
	res, err := SimulateStream(nil, FixedSender{RateValue: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDelivered != 0 || len(res.Steps) != 0 {
		t.Error("empty schedule not empty")
	}
	res, err = SimulateStream([]float64{100}, FixedSender{RateValue: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].Loss != 0 {
		t.Error("zero offered rate has loss")
	}
}
