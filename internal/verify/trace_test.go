package verify

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"protodsl/internal/expr"
	"protodsl/internal/fsm"
)

// TestTraceReplayInvariantViolations proves counter-example traces are
// evidence, not decoration: replaying a violation's move sequence from
// the initial state must land in a state where the invariant fails.
func TestTraceReplayInvariantViolations(t *testing.T) {
	cases := []struct {
		name string
		sys  func() (*System, error)
		inv  Invariant
	}{
		{"arq-broken-guard", func() (*System, error) {
			return BuildARQ(ARQOptions{SeqSpace: 4, Capacity: 2, BrokenAckGuard: true})
		}, StopAndWaitInvariant(4)},
		{"gbn-undersized-seqspace", func() (*System, error) {
			return BuildGBN(GBNOptions{SeqSpace: 3, Window: 3, Total: 4, Capacity: 2, Lossy: true})
		}, GBNInvariant(3)},
		{"sr-undersized-seqspace", func() (*System, error) {
			return BuildSR(SROptions{SeqSpace: 3, Total: 3, Capacity: 2, Lossy: true})
		}, SRInvariant(3)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sys, err := tc.sys()
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				res, err := Explore(sys, Options{
					MaxStates:  1 << 20,
					Invariants: []Invariant{tc.inv},
					Workers:    workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Violations) == 0 {
					t.Fatal("seeded bug produced no violations")
				}
				checked := 0
				for _, v := range res.Violations {
					if v.Kind != ViolationInvariant {
						continue
					}
					if len(v.Moves) != v.Depth {
						t.Errorf("workers=%d: trace length %d != depth %d", workers, len(v.Moves), v.Depth)
					}
					snap, _, err := Replay(sys, v.Moves)
					if err != nil {
						t.Fatalf("workers=%d: trace does not replay: %v", workers, err)
					}
					if ierr := tc.inv.Fn(snap); ierr == nil {
						t.Errorf("workers=%d: replayed trace %v does not violate %s", workers, v.Trace, tc.inv.Name)
					} else if ierr.Error() != v.Msg {
						t.Errorf("workers=%d: replayed violation %q, reported %q", workers, ierr, v.Msg)
					}
					checked++
					if checked >= 25 {
						break // the full violation set is covered by the differential test
					}
				}
				if checked == 0 {
					t.Fatal("no invariant violations to replay")
				}
			}
		})
	}
}

// divByZeroSystem steps into a division by zero on the first stimulus:
// the machine's x starts at 0 and the TICK assign evaluates 1 % x.
func divByZeroSystem() *System {
	spec := &fsm.Spec{
		Name:   "Crash",
		Vars:   []fsm.Var{{Name: "x", Type: expr.TU8}},
		States: []fsm.State{{Name: "Run", Init: true}, {Name: "Done", Final: true}},
		Events: []fsm.Event{{Name: "TICK"}, {Name: "STOP"}},
		Transitions: []fsm.Transition{
			{Name: "tick", From: "Run", Event: "TICK", To: "Run",
				Assigns: []fsm.Assign{{Var: "x", Expr: expr.MustParse("1 % x")}}},
			{Name: "stop", From: "Run", Event: "STOP", To: "Done"},
		},
		Messages: modelMessages(),
	}
	return &System{
		Specs: []*fsm.Spec{spec},
		Env:   []EnvEvent{{Machine: 0, Event: "TICK"}, {Machine: 0, Event: "STOP"}},
	}
}

// TestTraceReplayStepError pins step-error violations: the trace's final
// move is the one that faults, so replaying all but the last move
// succeeds and replaying the full trace reports the fault.
func TestTraceReplayStepError(t *testing.T) {
	sys := divByZeroSystem()
	for _, workers := range []int{1, 4} {
		res, err := Explore(sys, Options{MaxStates: 100, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var step *Violation
		for i := range res.Violations {
			if res.Violations[i].Kind == ViolationStep {
				step = &res.Violations[i]
				break
			}
		}
		if step == nil {
			t.Fatalf("workers=%d: no step violation; got %v", workers, res.Violations)
		}
		if !strings.Contains(step.Msg, "division by zero") {
			t.Errorf("workers=%d: step violation msg = %q", workers, step.Msg)
		}
		if len(step.Moves) == 0 {
			t.Fatal("step violation has no trace")
		}
		if _, _, err := Replay(sys, step.Moves[:len(step.Moves)-1]); err != nil {
			t.Errorf("workers=%d: trace prefix does not replay: %v", workers, err)
		}
		if _, _, err := Replay(sys, step.Moves); err == nil {
			t.Errorf("workers=%d: replaying the faulting move did not fault", workers)
		} else if !strings.Contains(err.Error(), "division by zero") {
			t.Errorf("workers=%d: replay error = %v", workers, err)
		}
	}
}

// TestTraceReplayDeadlock replays a deadlock trace and then proves the
// reported state is genuinely stuck: every enabled move either bounces
// off the machines or leaves the global state unchanged.
func TestTraceReplayDeadlock(t *testing.T) {
	sys := handshakeDeadlock()
	res, err := Explore(sys, Options{MaxStates: 10000, CheckDeadlock: true})
	if err != nil {
		t.Fatal(err)
	}
	var dl *Violation
	for i := range res.Violations {
		if res.Violations[i].Kind == ViolationDeadlock {
			dl = &res.Violations[i]
			break
		}
	}
	if dl == nil {
		t.Fatal("no deadlock violation")
	}
	snap, _, err := Replay(sys, dl.Moves)
	if err != nil {
		t.Fatalf("deadlock trace does not replay: %v", err)
	}
	if snap.States[0] != "Waiting" {
		t.Errorf("machine A deadlocked in %q, want Waiting", snap.States[0])
	}

	// Rebuild the deadlocked configuration and exhaust its moves.
	progs, err := compileSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	ms := newMachines(progs)
	queues := make([][]expr.Value, len(sys.Routes))
	deliverArgs := deliverArgsFor(sys)
	for _, mv := range dl.Moves {
		if _, err := applyMove(sys, ms, queues, mv, deliverArgs, nil); err != nil {
			t.Fatal(err)
		}
	}
	before := encodeGlobal(sys, ms, queues, nil)
	for _, mv := range enabledMoves(sys, ms, queues, nil) {
		msCopy := make([]*fsm.Machine, len(ms))
		for i, m := range ms {
			msCopy[i] = m.Clone()
		}
		qCopy := make([][]expr.Value, len(queues))
		copy(qCopy, queues)
		ar, err := applyMove(sys, msCopy, qCopy, mv, deliverArgs, nil)
		if err != nil {
			continue
		}
		if ar.envNoop {
			continue
		}
		if after := encodeGlobal(sys, msCopy, qCopy, nil); !bytes.Equal(before, after) {
			t.Errorf("deadlock state has productive move %s", mv.String())
		}
	}
}

// TestOverrunRegression is the bugfix sweep's regression test: channel
// overruns — a send into a full route silently dropping the oldest
// message — were previously invisible. They must now be counted, be
// identical across engines and worker counts, and be promotable to
// violations via the OverrunInvariant hook with a replayable trace.
func TestOverrunRegression(t *testing.T) {
	// Stop-and-wait with capacity 1: a retransmission into the full data
	// route overruns it.
	sys, err := BuildARQ(ARQOptions{SeqSpace: 4, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ExploreSequential(sys, Options{MaxStates: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Overruns[0] == 0 {
		t.Fatal("capacity-1 stop-and-wait produced no data-route overruns")
	}
	for _, workers := range []int{1, 2, 4} {
		par, err := Explore(sys, Options{MaxStates: 1 << 20, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for ri := range seq.Overruns {
			if par.Overruns[ri] != seq.Overruns[ri] {
				t.Errorf("workers=%d: route %d overruns = %d, want %d",
					workers, ri, par.Overruns[ri], seq.Overruns[ri])
			}
		}
	}

	// Promote overruns on the data route to violations.
	overrunInv := func(route int, dropped expr.Value) error {
		if route == 0 {
			return errDataOverrun
		}
		return nil
	}
	res, err := Explore(sys, Options{
		MaxStates:        1 << 20,
		OverrunInvariant: overrunInv,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, v := range res.Violations {
		if v.Kind != ViolationOverrun {
			t.Errorf("unexpected violation kind %q", v.Kind)
			continue
		}
		if v.Msg != errDataOverrun.Error() {
			t.Errorf("overrun msg = %q", v.Msg)
		}
		if len(v.Moves) == 0 {
			t.Fatal("overrun violation has no trace")
		}
		_, overruns, err := Replay(sys, v.Moves)
		if err != nil {
			t.Fatalf("overrun trace does not replay: %v", err)
		}
		if overruns[0] == 0 {
			t.Errorf("replayed overrun trace %v drops nothing on route 0", v.Trace)
		}
		found++
		if found >= 10 {
			break
		}
	}
	if found == 0 {
		t.Fatal("OverrunInvariant produced no violations")
	}
}

var errDataOverrun = errors.New("data route must never overrun")
