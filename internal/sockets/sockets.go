// Package sockets is the paper's §1 baseline: the same stop-and-wait ARQ
// protocol, hand-written in the classic C-sockets style — manual buffer
// packing, explicit state integers, and an error check after every single
// operation. It is functionally equivalent to internal/arq (the tests
// assert this) and exists so experiment E2 can measure the claim that
// "typically, 50% or more of the code will deal with error checking or
// other software control functions rather than the functionality of the
// protocol".
//
// The style here is deliberately what the paper criticises. Do not clean
// it up: its verbosity is the measurement.
//
// Like the DSL engines it mirrors, each hand-rolled sender/receiver is
// single-owner inside its simulator's event loop.
package sockets

import (
	"errors"
	"fmt"
	"time"

	"protodsl/internal/netsim"
)

// Protocol constants, mirroring what a C header would #define.
const (
	hdrSize    = 4 // seq(1) + chk(1) + paylen(2)
	ackSize    = 2 // seq(1) + chk(1)
	maxPayload = 65535

	stateReady   = 0
	stateWait    = 1
	stateTimeout = 2
	stateSent    = 3
)

// Error codes in the errno style.
var (
	ErrTooBig      = errors.New("payload too large")
	ErrShortPacket = errors.New("packet too short")
	ErrBadChecksum = errors.New("bad checksum")
	ErrBadLength   = errors.New("bad length field")
	ErrInternal    = errors.New("internal protocol error")
)

// Result mirrors arq.Result for the harness.
type Result struct {
	OK          bool
	Delivered   [][]byte
	PacketsSent int
	Retransmits int
	Duration    time.Duration
}

// checksum8 sums all bytes mod 256 with the checksum position zeroed by
// the caller.
func checksum8(buf []byte) byte {
	var sum int
	for i := 0; i < len(buf); i++ {
		sum += int(buf[i])
	}
	return byte(sum & 0xFF)
}

// packPacket writes the packet into buf and returns its size.
// Every precondition is checked by hand.
func packPacket(buf []byte, seq byte, payload []byte) (int, error) {
	if payload == nil {
		payload = []byte{}
	}
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("packPacket: %w: %d bytes", ErrTooBig, len(payload))
	}
	need := hdrSize + len(payload)
	if len(buf) < need {
		return 0, fmt.Errorf("packPacket: %w: buffer %d < %d", ErrTooBig, len(buf), need)
	}
	buf[0] = seq
	buf[1] = 0 // checksum placeholder
	buf[2] = byte(len(payload) >> 8)
	buf[3] = byte(len(payload) & 0xFF)
	n := copy(buf[hdrSize:], payload)
	if n != len(payload) {
		return 0, fmt.Errorf("packPacket: %w: short copy %d", ErrInternal, n)
	}
	buf[1] = checksum8(buf[:need])
	return need, nil
}

// unpackPacket parses and validates a packet by hand.
func unpackPacket(data []byte) (seq byte, payload []byte, err error) {
	if len(data) < hdrSize {
		return 0, nil, fmt.Errorf("unpackPacket: %w: %d bytes", ErrShortPacket, len(data))
	}
	seq = data[0]
	chk := data[1]
	plen := int(data[2])<<8 | int(data[3])
	if plen < 0 || plen > maxPayload {
		return 0, nil, fmt.Errorf("unpackPacket: %w: %d", ErrBadLength, plen)
	}
	if len(data) != hdrSize+plen {
		return 0, nil, fmt.Errorf("unpackPacket: %w: have %d want %d", ErrBadLength, len(data), hdrSize+plen)
	}
	tmp := make([]byte, len(data))
	n := copy(tmp, data)
	if n != len(data) {
		return 0, nil, fmt.Errorf("unpackPacket: %w: short copy", ErrInternal)
	}
	tmp[1] = 0
	if want := checksum8(tmp); chk != want {
		return 0, nil, fmt.Errorf("unpackPacket: %w: %#x != %#x", ErrBadChecksum, chk, want)
	}
	payload = make([]byte, plen)
	n = copy(payload, data[hdrSize:])
	if n != plen {
		return 0, nil, fmt.Errorf("unpackPacket: %w: short payload copy", ErrInternal)
	}
	return seq, payload, nil
}

// packAck writes an ack into buf.
func packAck(buf []byte, seq byte) (int, error) {
	if len(buf) < ackSize {
		return 0, fmt.Errorf("packAck: %w", ErrInternal)
	}
	buf[0] = seq
	buf[1] = 0
	buf[1] = checksum8(buf[:ackSize])
	return ackSize, nil
}

// unpackAck parses and validates an ack.
func unpackAck(data []byte) (byte, error) {
	if len(data) != ackSize {
		return 0, fmt.Errorf("unpackAck: %w: %d bytes", ErrShortPacket, len(data))
	}
	seq := data[0]
	chk := data[1]
	tmp := [ackSize]byte{data[0], 0}
	if want := checksum8(tmp[:]); chk != want {
		return 0, fmt.Errorf("unpackAck: %w: %#x != %#x", ErrBadChecksum, chk, want)
	}
	return seq, nil
}

// sender is the hand-rolled sender control block.
type sender struct {
	sim        *netsim.Sim
	ep         *netsim.Endpoint
	peer       netsim.Addr
	state      int
	seq        byte
	payloads   [][]byte
	idx        int
	timer      netsim.Timer
	rto        time.Duration
	maxRetries int
	retries    int
	sent       int
	retrans    int
	done       bool
	ok         bool
	err        error
}

func (s *sender) fatal(err error) {
	if s.err == nil {
		s.err = err
	}
	s.done = true
	if s.timer != nil {
		s.timer.Cancel()
	}
}

func (s *sender) sendCurrent(isRetrans bool) {
	if s.state != stateReady {
		s.fatal(fmt.Errorf("sendCurrent: %w: state %d", ErrInternal, s.state))
		return
	}
	if s.idx < 0 || s.idx >= len(s.payloads) {
		s.fatal(fmt.Errorf("sendCurrent: %w: index %d", ErrInternal, s.idx))
		return
	}
	payload := s.payloads[s.idx]
	buf := make([]byte, hdrSize+len(payload))
	n, err := packPacket(buf, s.seq, payload)
	if err != nil {
		s.fatal(err)
		return
	}
	if n != len(buf) {
		s.fatal(fmt.Errorf("sendCurrent: %w: packed %d != %d", ErrInternal, n, len(buf)))
		return
	}
	if err := s.ep.Send(s.peer, buf); err != nil {
		s.fatal(err)
		return
	}
	s.sent++
	if isRetrans {
		s.retrans++
	}
	s.state = stateWait
	if s.timer != nil {
		s.timer.Cancel()
	}
	s.timer = s.sim.After(s.rto, s.onTimeout)
}

func (s *sender) step() {
	if s.done {
		return
	}
	if s.state != stateReady {
		s.fatal(fmt.Errorf("step: %w: state %d", ErrInternal, s.state))
		return
	}
	if s.idx >= len(s.payloads) {
		s.state = stateSent
		s.done = true
		s.ok = true
		if s.timer != nil {
			s.timer.Cancel()
		}
		return
	}
	s.sendCurrent(false)
}

func (s *sender) onDatagram(_ netsim.Addr, data []byte) {
	if s.done {
		return
	}
	ackSeq, err := unpackAck(data)
	if err != nil {
		// Corrupted ack: retransmit immediately, but only if waiting.
		if s.state != stateWait {
			return
		}
		s.state = stateReady
		s.sendCurrent(true)
		return
	}
	if s.state != stateWait {
		return // stale ack
	}
	if ackSeq != s.seq {
		return // ack for a different packet: keep waiting
	}
	if s.timer != nil {
		s.timer.Cancel()
	}
	s.seq++
	s.retries = 0
	s.idx++
	s.state = stateReady
	s.step()
}

func (s *sender) onTimeout() {
	if s.done {
		return
	}
	if s.state != stateWait {
		return // late timer
	}
	s.state = stateTimeout
	s.retries++
	if s.retries > s.maxRetries {
		s.done = true
		s.ok = false
		return
	}
	s.state = stateReady
	s.sendCurrent(true)
}

// receiver is the hand-rolled receiver control block.
type receiver struct {
	ep        *netsim.Endpoint
	peer      netsim.Addr
	expect    byte
	delivered [][]byte
	err       error
}

func (r *receiver) onDatagram(_ netsim.Addr, data []byte) {
	if r.err != nil {
		return
	}
	seq, payload, err := unpackPacket(data)
	if err != nil {
		return // drop invalid packets; sender's timer recovers
	}
	if seq == r.expect {
		r.delivered = append(r.delivered, payload)
		r.expect++
	}
	var ackBuf [ackSize]byte
	n, err := packAck(ackBuf[:], seq)
	if err != nil {
		r.err = err
		return
	}
	if n != ackSize {
		r.err = fmt.Errorf("onDatagram: %w: packed ack %d", ErrInternal, n)
		return
	}
	if err := r.ep.Send(r.peer, ackBuf[:]); err != nil {
		r.err = err
		return
	}
}

// RunTransfer runs the hand-written protocol over the simulator with the
// same semantics as arq.RunTransfer.
func RunTransfer(cfg Config, payloads [][]byte) (*Result, error) {
	if cfg.RTO == 0 {
		cfg.RTO = 50 * time.Millisecond
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 10
	}
	if cfg.EventBudget == 0 {
		cfg.EventBudget = 10000 + 200*len(payloads)*(cfg.MaxRetries+1)
	}
	sim := netsim.New(cfg.Seed)
	sEP, err := sim.NewEndpoint("sender")
	if err != nil {
		return nil, err
	}
	rEP, err := sim.NewEndpoint("receiver")
	if err != nil {
		return nil, err
	}
	sim.Connect(sEP, rEP, cfg.Link)

	recv := &receiver{ep: rEP, peer: sEP.Addr()}
	rEP.SetHandler(recv.onDatagram)
	send := &sender{
		sim: sim, ep: sEP, peer: rEP.Addr(),
		payloads: payloads, rto: cfg.RTO, maxRetries: cfg.MaxRetries,
	}
	sEP.SetHandler(send.onDatagram)
	sim.Post(send.step)

	if err := sim.RunUntilIdle(cfg.EventBudget); err != nil {
		return nil, fmt.Errorf("sockets transfer: %w", err)
	}
	if send.err != nil {
		return nil, fmt.Errorf("sockets transfer: sender: %w", send.err)
	}
	if recv.err != nil {
		return nil, fmt.Errorf("sockets transfer: receiver: %w", recv.err)
	}
	return &Result{
		OK:          send.ok,
		Delivered:   recv.delivered,
		PacketsSent: send.sent,
		Retransmits: send.retrans,
		Duration:    sim.Now(),
	}, nil
}

// Config mirrors arq.Config.
type Config struct {
	Link        netsim.LinkParams
	RTO         time.Duration
	MaxRetries  int
	Seed        int64
	EventBudget int
}
