package arq

import (
	"time"

	"protodsl/internal/obs"
)

// This file implements the adaptive retransmission timeout shared by
// both window engines (DESIGN.md §13). The estimator is RFC 6298
// restated in the engines' vocabulary:
//
//	first sample:  SRTT = R,              RTTVAR = R/2
//	after:         RTTVAR = ¾·RTTVAR + ¼·|SRTT − R|
//	               SRTT   = ⅞·SRTT   + ⅛·R
//	base RTO:      clamp(SRTT + max(G, 4·RTTVAR), MinRTO, MaxRTO)
//	on timeout:    armed RTO = base << shift, shift capped
//	on progress:   shift = 0 (reset-on-ack)
//
// Samples are the engines' existing Karn-filtered RTT observations —
// never a retransmitted packet — so retransmission ambiguity cannot
// poison the estimate; exponential backoff covers the window where
// Karn's rule starves the estimator of samples. The code is identical
// on the virtual-time and real-clock paths because it only ever sees
// time.Duration deltas from the Runtime seam.
//
// In fixed mode (FlowConfig.Adaptive false) every method is a no-op and
// current() returns the configured RTO, so both engines run the same
// call sites in both modes and fixed-mode event sequences stay
// byte-identical to the pre-estimator engines — the golden-trace pins
// depend on that.

const (
	// rtoGranularity is RFC 6298's clock granularity G, the variance
	// floor in base = SRTT + max(G, 4·RTTVAR): an RTT stream with no
	// measured variance still gets headroom above SRTT.
	rtoGranularity = time.Millisecond

	// rtoMaxShift caps exponential backoff at 2^6 = 64× base. MaxRTO
	// usually binds first; the shift cap keeps the doubling arithmetic
	// overflow-free regardless of configuration.
	rtoMaxShift = 6

	// Default clamp bounds when FlowConfig leaves them zero. The floor
	// guards against a transient sub-millisecond RTT estimate arming a
	// degenerate timer; the ceiling keeps a backed-off flow probing a
	// healed path within seconds, not minutes.
	defaultMinRTO = 5 * time.Millisecond
	defaultMaxRTO = 10 * time.Second
)

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// rtoState is one sender's timeout estimator. Value-embedded in the
// sender structs; single-goroutine like everything else in an engine.
type rtoState struct {
	adaptive bool
	fixed    time.Duration // fixed-mode RTO; also the adaptive initial RTO
	min, max time.Duration

	srtt    time.Duration
	rttvar  time.Duration
	sampled bool          // first sample seen (SRTT/RTTVAR valid)
	base    time.Duration // computed RTO before backoff
	shift   uint          // exponential backoff exponent

	obs *obs.Shard
}

// newRTOState builds the estimator from an applyDefaults'd config.
// Until the first sample the adaptive base is the configured RTO
// (clamped), mirroring RFC 6298's conservative initial timeout.
func newRTOState(cfg *FlowConfig, sh *obs.Shard) rtoState {
	st := rtoState{
		adaptive: cfg.Adaptive, fixed: cfg.RTO,
		min: cfg.MinRTO, max: cfg.MaxRTO,
		obs: sh,
	}
	if st.adaptive {
		st.base = clampDur(cfg.RTO, st.min, st.max)
		st.publish()
	}
	return st
}

// current returns the RTO to arm right now, backoff included.
func (r *rtoState) current() time.Duration {
	if !r.adaptive {
		return r.fixed
	}
	return clampDur(r.base<<r.shift, r.min, r.max)
}

// sample feeds one Karn-valid RTT measurement: recompute SRTT/RTTVAR
// and the base RTO, and clear any backoff (a sample implies an ack).
func (r *rtoState) sample(rtt time.Duration) {
	if !r.adaptive {
		return
	}
	if rtt < 0 {
		rtt = 0
	}
	if !r.sampled {
		r.srtt, r.rttvar, r.sampled = rtt, rtt/2, true
	} else {
		dev := r.srtt - rtt
		if dev < 0 {
			dev = -dev
		}
		r.rttvar = (3*r.rttvar + dev) / 4
		r.srtt = (7*r.srtt + rtt) / 8
	}
	vv := 4 * r.rttvar
	if vv < rtoGranularity {
		vv = rtoGranularity
	}
	r.base = clampDur(r.srtt+vv, r.min, r.max)
	r.shift = 0
	r.publish()
}

// progress clears backoff on any forward-progress ack — including acks
// for retransmitted packets, which Karn's rule bars from sampling but
// which still prove the path is passing traffic again.
func (r *rtoState) progress() {
	if !r.adaptive || r.shift == 0 {
		return
	}
	r.shift = 0
	r.publish()
}

// backoff doubles the armed RTO after a retransmission timeout (capped
// by rtoMaxShift and MaxRTO) and counts the event.
func (r *rtoState) backoff() {
	if !r.adaptive {
		return
	}
	if r.shift < rtoMaxShift {
		r.shift++
	}
	r.obs.Inc(obs.RTOBackoffs)
	r.publish()
}

// publish surfaces the armed RTO through the shard gauge (one atomic
// store; the last engine to rearm wins on a shared shard).
func (r *rtoState) publish() {
	r.obs.SetGauge(obs.GaugeRTO, int64(r.current()))
}
