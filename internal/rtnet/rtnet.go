// Package rtnet is the real-network runtime: it carries the same
// compiled protocol engines that run inside internal/netsim onto actual
// UDP sockets, unchanged. The netsim.Port / netsim.Runtime / netsim.Mux
// contracts are the seam — an arq go-back-N or selective-repeat engine
// attached to an rtnet flow cannot tell it is no longer in simulation,
// except that time is real and the network genuinely loses packets.
//
// Architecture (one socket *per shard*, sharing one port):
//
//	socket 0 ── reader 0 ── batched reads ──┐
//	socket 1 ── reader 1 ── batched reads ──┼─► shard event loops ── engines
//	socket N ── reader N ── batched reads ──┘   (frames routed by flow id)
//
// A Node owns one UDP port. On Linux every shard gets its own socket
// bound to that port with SO_REUSEPORT — the kernel steers incoming
// flows across the sockets, so receive processing and socket buffering
// scale with the shard count instead of serialising on one socket lock
// — and each socket keeps the PR 3 single-reader-goroutine design,
// just multiplied. Logical flows are multiplexed with the netsim.Mux
// frame header (flow id + bitwise complement); readers validate the
// header and route each frame to the shard owning its flow id (id mod
// shards), whichever socket it arrived on. Each shard goroutine owns a
// timing-wheel Loop (real-clock timers with the simulator's
// cancel-really-cancels guarantee), a Mux, every engine attached to its
// flows, and its *own* socket for sends — preserving netsim's
// one-engine-one-goroutine contract: nothing inside a shard is ever
// touched by another goroutine.
//
// Outbound packets are staged per wakeup and flushed in one sendmmsg
// burst, with runs of equal-size frames to one peer coalesced into
// UDP_SEGMENT (GSO) super-datagrams — a wakeup's window of frames to a
// peer goes down as one syscall-side packet. Receives enable UDP_GRO,
// so such bursts come back up re-coalesced and are split in userspace.
// Both degrade gracefully (probed at Listen; portable fallbacks in
// io_fallback.go), and the steady-state send/receive path allocates
// nothing. See DESIGN.md §7.
//
// Concurrency contract: engine state may only be touched from its
// owning shard's loop. Cross-goroutine access goes through Node.Do /
// Flow.Do, which run a function inside the loop and wait for it.
//
// Robustness (DESIGN.md §13): the node degrades rather than stalls.
// Readers never block — a full shard inbox sheds its oldest batch and a
// dry batch pool sheds the frame, both counted as sheds; engine panics
// are contained to the offending flow (panics_recovered); served
// engines idle past Config.IdleTimeout are reaped (flows_expired); and
// shutdown is two-phase: Drain (lame duck — no engines for new peers,
// in-flight work finishes) then Close (shards quiesce and flush before
// the sockets go away). Config.Faults interposes a deterministic chaos
// schedule on the send path for testing all of the above.
package rtnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"protodsl/internal/faults"
	"protodsl/internal/netsim"
	"protodsl/internal/obs"
	"protodsl/internal/session"
)

// traceRingSlots sizes each shard's packet-trace ring. Tracing is off
// by default; the rings are armed at Listen so it can be toggled at
// runtime (obs.Stats.SetTrace / the /trace endpoint) without ever
// allocating on the data path.
const traceRingSlots = 1024

// maxPeerNames bounds the reader's source-address string cache; see
// route.
const maxPeerNames = 1 << 16

// groDatagramSize is the blocking-read scratch size once UDP_GRO is
// active: a coalesced delivery can approach the 64 KiB UDP maximum
// regardless of MaxPacket.
const groDatagramSize = 1 << 16

// groBurst caps the recvmmsg burst once GRO is active: each burst slot
// then needs a 64 KiB buffer, and one coalesced delivery already
// carries many frames, so a small burst keeps memory bounded without
// costing syscalls.
const groBurst = 8

// Package errors.
var (
	// ErrClosed is returned for operations on a closed Node.
	ErrClosed = errors.New("rtnet: node closed")
	// ErrBadAddr is returned when a destination address cannot be parsed
	// as ip:port.
	ErrBadAddr = errors.New("rtnet: bad address")
)

// Config parameterises a Node. The zero value selects sensible
// defaults.
type Config struct {
	// Shards is the number of worker event loops (flow id mod Shards
	// picks the owner) and — where SO_REUSEPORT is available — the
	// number of sockets sharing the node's port, one per shard. Zero
	// selects min(GOMAXPROCS, 4).
	Shards int
	// MaxPacket is the largest UDP datagram accepted or staged, mux
	// header included. Zero selects 2048.
	MaxPacket int
	// Batch is the number of packets handed to a shard per wakeup and
	// the burst size of the batched read/write paths. Zero selects 32.
	Batch int
	// SocketBuffer sizes the kernel send/receive buffers (per socket).
	// Zero selects 1 MiB.
	SocketBuffer int
	// MaxPeersPerFlow caps how many distinct peers a *served* flow will
	// spawn engines for (Serve); datagrams from further peers on that
	// flow are dropped. UDP sources are trivially spoofable, so without
	// a cap a source-address sweep would grow server memory without
	// bound. Zero selects 1024. Flows claimed with Node.Flow are not
	// affected.
	MaxPeersPerFlow int
	// SingleSocket forces one shared socket even where SO_REUSEPORT is
	// available (the pre-REUSEPORT data path; the scaling benchmark's
	// baseline).
	SingleSocket bool
	// IdleTimeout, if positive, expires served (flow, peer) engines that
	// have received no frame for this long: the engine state is dropped
	// (counted as flows_expired) and the next frame from that peer
	// spawns a fresh engine. This is the server's defence against
	// abandoned peers pinning memory forever; set it well above the
	// flows' inter-packet gaps (RTO × retries), because expiring a
	// mid-transfer engine discards its reassembly state. Zero disables
	// expiry. Flows claimed with Node.Flow are not affected.
	IdleTimeout time.Duration
	// Faults, if non-nil, interposes a fault-injection schedule
	// (internal/faults) on the node's send path: each shard derives its
	// own injector (instance id = shard index) and consults it on every
	// staged frame, on the node's clock (time since Listen). Injected
	// drops are counted as drop_fault; injected delays re-stage a copy
	// of the frame through the shard's timing wheel. Nil injects nothing
	// and adds nothing to the hot path but one nil check.
	Faults *faults.Schedule
}

func (c *Config) applyDefaults() {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
		if c.Shards > 4 {
			c.Shards = 4
		}
	}
	if c.MaxPacket <= 0 {
		c.MaxPacket = 2048
	}
	if c.Batch <= 0 {
		c.Batch = 32
	}
	if c.SocketBuffer <= 0 {
		c.SocketBuffer = 1 << 20
	}
	if c.MaxPeersPerFlow <= 0 {
		c.MaxPeersPerFlow = 1024
	}
}

// pkt is one received frame, mux header still attached; data aliases
// the owning batch's buffer and is valid until the batch is recycled.
type pkt struct {
	from netsim.Addr
	data []byte
}

// batch is a reusable bundle of received frames. Buffers are sized so
// appends never reallocate: readers fill batches, shards drain them
// and hand them back through the free pool.
type batch struct {
	pkts []pkt
	buf  []byte
}

// Node is one UDP port carrying many logical flows. Create with
// Listen; see the package comment for the threading model.
type Node struct {
	conns    []*net.UDPConn    // one per shard (REUSEPORT) or one shared
	raws     []syscall.RawConn // parallel to conns
	start    time.Time
	addr     netsim.Addr
	v6       bool
	gso      bool // UDP_SEGMENT accepted on the sockets
	gro      bool // UDP_GRO active on the sockets
	cfg      Config
	shards   []*Shard
	free     chan *batch
	done     chan struct{}
	once     sync.Once
	wg       sync.WaitGroup
	readerWg sync.WaitGroup
	shardWg  sync.WaitGroup
	draining atomic.Bool

	// stats is the node's observability block: one padded shard of
	// atomic counters/histograms/trace ring per worker shard, allocated
	// once here and written lock-free from the loops. Reader-side drops
	// are attributed to the reading socket's shard; everything else to
	// the owning shard.
	stats *obs.Stats

	// sessionStores are the per-shard crash-recovery logs opened by
	// ServeSession (empty without a state dir); closed after the shard
	// loops quiesce so no append races the teardown.
	sessionStores []*session.Store
}

// listenSockets binds the node's socket group: one SO_REUSEPORT socket
// per shard where the platform supports it (unless cfg.SingleSocket),
// one plain socket otherwise. All sockets share the same port; the
// first bind picks it when addr's port is 0.
func listenSockets(addr string, cfg Config) ([]*net.UDPConn, error) {
	single := func() ([]*net.UDPConn, error) {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, err
		}
		conn, err := net.ListenUDP("udp", ua)
		if err != nil {
			return nil, err
		}
		return []*net.UDPConn{conn}, nil
	}
	if !reusePortSupported || cfg.SingleSocket || cfg.Shards == 1 {
		return single()
	}
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		return setReusePort(c)
	}}
	first, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		// SO_REUSEPORT refused (unusual on Linux): fall back to the
		// single-socket data path rather than failing the node.
		return single()
	}
	conns := []*net.UDPConn{first.(*net.UDPConn)}
	bound := first.LocalAddr().String()
	for len(conns) < cfg.Shards {
		pc, err := lc.ListenPacket(context.Background(), "udp", bound)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, fmt.Errorf("rtnet: binding REUSEPORT socket %d to %s: %w", len(conns), bound, err)
		}
		conns = append(conns, pc.(*net.UDPConn))
	}
	return conns, nil
}

// Listen opens the node's socket group on addr (e.g. "127.0.0.1:0")
// and starts the reader and shard goroutines.
func Listen(addr string, cfg Config) (*Node, error) {
	cfg.applyDefaults()
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	conns, err := listenSockets(addr, cfg)
	if err != nil {
		return nil, err
	}
	closeAll := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	raws := make([]syscall.RawConn, len(conns))
	for i, conn := range conns {
		_ = conn.SetReadBuffer(cfg.SocketBuffer)
		_ = conn.SetWriteBuffer(cfg.SocketBuffer)
		raw, err := conn.SyscallConn()
		if err != nil {
			closeAll()
			return nil, err
		}
		raws[i] = raw
	}
	lap := conns[0].LocalAddr().(*net.UDPAddr).AddrPort()
	canonical := netip.AddrPortFrom(lap.Addr().Unmap(), lap.Port())
	n := &Node{
		conns: conns,
		raws:  raws,
		start: time.Now(),
		addr:  netsim.Addr(canonical.String()),
		v6:    lap.Addr().Is6() && !lap.Addr().Is4In6(),
		cfg:   cfg,
		done:  make(chan struct{}),
		stats: obs.New(cfg.Shards, traceRingSlots),
	}
	// Segmentation offload: probe once (the sockets are identical),
	// enable GRO everywhere it took.
	n.gso = probeGSO(raws[0])
	n.gro = true
	for _, raw := range raws {
		if !enableGRO(raw) {
			n.gro = false
			break
		}
	}
	// Enough batches that every reader can hold one pending per shard
	// while every shard is still chewing on a few.
	poolSize := cfg.Shards * 2 * (len(conns) + 1)
	n.free = make(chan *batch, poolSize)
	for i := 0; i < poolSize; i++ {
		n.free <- &batch{
			pkts: make([]pkt, 0, cfg.Batch),
			buf:  make([]byte, 0, cfg.Batch*cfg.MaxPacket),
		}
	}
	n.shards = make([]*Shard, cfg.Shards)
	for i := range n.shards {
		n.shards[i] = newShard(n, i)
	}
	n.wg.Add(1 + len(n.shards) + len(conns))
	n.readerWg.Add(len(conns))
	n.shardWg.Add(len(n.shards))
	for _, s := range n.shards {
		go s.run()
	}
	for i := range conns {
		go n.readLoop(i, conns[i], raws[i])
	}
	// Shard inboxes close only after every reader has exited.
	go func() {
		defer n.wg.Done()
		n.readerWg.Wait()
		for _, s := range n.shards {
			close(s.in)
		}
	}()
	return n, nil
}

// Addr returns the node's local address ("ip:port"), the identity its
// frames carry on the wire.
func (n *Node) Addr() netsim.Addr { return n.addr }

// Shards returns the number of worker event loops the node runs (the
// configured count after defaulting). Flow id mod Shards picks the
// owning loop.
func (n *Node) Shards() int { return len(n.shards) }

// Sockets returns how many sockets share the node's port (Shards where
// SO_REUSEPORT is in effect, 1 otherwise).
func (n *Node) Sockets() int { return len(n.conns) }

// Offloads reports whether UDP generic segmentation (send) and receive
// coalescing are active on the node's sockets.
func (n *Node) Offloads() (gso, gro bool) { return n.gso, n.gro }

// Obs returns the node's observability block: per-shard counters, RTT
// histograms and trace rings, readable from any goroutine at any time.
func (n *Node) Obs() *obs.Stats { return n.stats }

// Drops returns the number of datagrams discarded at the node for a
// short or corrupted mux header, an oversize frame, or an unspeakable
// source family — attacker-controlled bytes that never reach a shard.
// It sums the receive-side drop-reason counters (see Obs for the
// breakdown); per-flow drops (unclaimed ids) are counted by each
// shard's Mux on top of this.
func (n *Node) Drops() uint64 {
	return n.stats.Total(obs.DropBadHeader) +
		n.stats.Total(obs.DropOversize) +
		n.stats.Total(obs.DropBadSource)
}

// SendErrors returns the number of staged packets the socket refused
// (treated as wire loss: ARQ recovers them). It sums the send-side
// drop-reason counters; see Obs for the breakdown.
func (n *Node) SendErrors() uint64 {
	return n.stats.Total(obs.DropSendError) + n.stats.Total(obs.DropSendFamily)
}

// Close shuts the node down: readers are unblocked and exit, shard
// loops drain their inboxes, run one final flush, and exit, and only
// then are the sockets closed. Pending timers are dropped. Close is
// idempotent.
//
// The ordering matters: readers are kicked out of their blocking reads
// with a read deadline rather than by closing the sockets, because the
// shard loops' final sendmmsg flush still needs the file descriptors —
// closing them first raced the in-flight flush against fd teardown
// (send errors at best, a reused descriptor at worst). For an orderly
// shutdown that also finishes in-flight transfers, call Drain first.
func (n *Node) Close() error {
	n.once.Do(func() {
		close(n.done)
		// Unblock every reader without touching the fds: a deadline in
		// the past fails the blocking read immediately, the reader sees
		// closed() and exits, and the closer goroutine then shuts the
		// shard inboxes.
		past := time.Now().Add(-time.Second)
		for _, c := range n.conns {
			_ = c.SetReadDeadline(past)
		}
	})
	// Shards finish their final flush on still-open sockets before the
	// fds go away.
	n.shardWg.Wait()
	for _, st := range n.sessionStores {
		_ = st.Close()
	}
	for _, c := range n.conns {
		_ = c.Close()
	}
	n.wg.Wait()
	return nil
}

// Drain quiescence tuning: activity is sampled every drainPoll, and the
// node is deemed quiescent after drainQuiet with no frame or
// ARQ-timeout activity anywhere. The quiet window is sized above the
// RTO of a healthy flow — a live transfer bumps frames or timeouts at
// least that often — so the flows drain abandons are the ones backed
// off past it, whose peers are plausibly gone (see DESIGN.md §13).
const (
	drainPoll         = 2 * time.Millisecond
	drainQuiet        = 60 * time.Millisecond
	defaultDrainLimit = 5 * time.Second
)

// activity sums the counters any live flow must keep moving: frames in
// either direction, or retransmission-timer fires.
func (n *Node) activity() uint64 {
	return n.stats.Total(obs.FramesIn) +
		n.stats.Total(obs.FramesOut) +
		n.stats.Total(obs.Timeouts)
}

// Draining reports whether Drain has been called.
func (n *Node) Draining() bool { return n.draining.Load() }

// Drain moves the node into lame-duck mode and waits for in-flight
// work to finish: served flows stop accepting engines for new peers
// (frames from them are dropped and counted as drop_draining — their
// senders see it as loss), while established flows keep running until
// the whole node has been quiet for drainQuiet. Drain returns nil once
// quiescent; on reaching timeout (zero selects 5s) it returns an error
// with the node still running, so the caller chooses between waiting
// longer and closing anyway. Call Close afterwards either way — a
// typical shutdown is Drain, log any stragglers, Close.
func (n *Node) Drain(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = defaultDrainLimit
	}
	n.draining.Store(true)
	deadline := time.Now().Add(timeout)
	last := n.activity()
	lastChange := time.Now()
	for {
		if n.closed() {
			return ErrClosed
		}
		time.Sleep(drainPoll)
		now := time.Now()
		if cur := n.activity(); cur != last {
			last, lastChange = cur, now
		} else if now.Sub(lastChange) >= drainQuiet {
			return nil
		}
		if now.After(deadline) {
			return fmt.Errorf("rtnet: drain timed out after %s (activity still moving)", timeout)
		}
	}
}

// Dial resolves remote ("host:port") to the canonical address frames
// from this node will carry to it. It performs no handshake — UDP has
// none — it only fixes the peer's identity, and rejects destinations
// the node's socket family can never reach (a v6 destination on a
// v4-bound node would otherwise blackhole every send).
func (n *Node) Dial(remote string) (netsim.Addr, error) {
	ua, err := net.ResolveUDPAddr("udp", remote)
	if err != nil {
		return "", err
	}
	ap := ua.AddrPort()
	ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	if !n.v6 && !ap.Addr().Is4() && !ap.Addr().Is4In6() {
		return "", fmt.Errorf("%w: %s resolves to IPv6 %s but this node's socket is IPv4-only (listen on an IPv6 or wildcard address to reach it)",
			ErrBadAddr, remote, ap)
	}
	return netsim.Addr(ap.String()), nil
}

func (n *Node) shardFor(id byte) *Shard { return n.shards[int(id)%len(n.shards)] }

// Do runs fn inside the event loop of the shard owning flow id and
// waits for it to finish — the only safe way to touch engine state from
// outside the loop. It must not be called from inside a shard loop.
func (n *Node) Do(id byte, fn func()) error { return n.shardFor(id).do(fn) }

// Flow claims the given flow id on its owning shard and returns a
// handle for attaching an engine to it.
func (n *Node) Flow(id byte) (*Flow, error) {
	sh := n.shardFor(id)
	var (
		fp   *netsim.FlowPort
		ferr error
	)
	if err := sh.do(func() { fp, ferr = sh.mux.Flow(id) }); err != nil {
		return nil, err
	}
	if ferr != nil {
		return nil, ferr
	}
	return &Flow{sh: sh, fp: fp, id: id}, nil
}

// Flow is one claimed logical flow of a Node.
type Flow struct {
	sh *Shard
	fp *netsim.FlowPort
	id byte
}

// ID returns the flow id.
func (f *Flow) ID() byte { return f.id }

// Do runs fn inside the owning shard's event loop, handing it the
// shard's Runtime and this flow's Port, and waits for it to finish.
// Engines are attached here:
//
//	flow.Do(func(rt netsim.Runtime, port netsim.Port) {
//	    sender, err = arq.AttachGBNSender(rt, port, peer, cfg, payloads, onDone)
//	})
func (f *Flow) Do(fn func(rt netsim.Runtime, port netsim.Port)) error {
	return f.sh.do(func() { fn(f.sh.loop, f.fp) })
}

// AcceptFunc decides what to attach when a frame arrives on a served
// flow from a peer not seen before on that flow. It runs inside the
// owning shard's loop and returns the handler for that (flow, peer)
// pair — typically an arq receiver's OnDatagram — or nil to drop all
// traffic from that peer on that flow.
type AcceptFunc func(rt netsim.Runtime, port netsim.Port, peer netsim.Addr, flow byte) func(from netsim.Addr, data []byte)

// Serve claims every still-unclaimed flow id and installs accept as the
// demultiplexer: one engine per (flow, peer) pair, spawned inside the
// owning shard's loop on first contact. Flows claimed earlier (Node.Flow)
// are left alone, so a node can serve and originate at once.
func (n *Node) Serve(accept AcceptFunc) error {
	for _, sh := range n.shards {
		sh := sh
		err := sh.do(func() {
			for id := 0; id < 256; id++ {
				if n.shardFor(byte(id)) != sh {
					continue
				}
				fp, err := sh.mux.Flow(byte(id))
				if err != nil {
					continue // claimed by the caller: not ours to serve
				}
				installAcceptor(sh, fp, byte(id), accept)
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// peerEngine is one served (flow, peer) engine plus the idle-expiry
// stamp the sweep reads.
type peerEngine struct {
	h        func(netsim.Addr, []byte)
	lastSeen time.Duration
}

// acceptor owns one served flow's peer table. It lives entirely inside
// its shard's loop; the shard registers it for the idle sweep.
type acceptor struct {
	sh      *Shard
	fp      *netsim.FlowPort
	id      byte
	accept  AcceptFunc
	engines map[netsim.Addr]*peerEngine
}

func installAcceptor(sh *Shard, fp *netsim.FlowPort, id byte, accept AcceptFunc) {
	a := &acceptor{sh: sh, fp: fp, id: id, accept: accept,
		engines: make(map[netsim.Addr]*peerEngine)}
	sh.acceptors = append(sh.acceptors, a)
	maxPeers := sh.node.cfg.MaxPeersPerFlow
	fp.SetHandler(func(from netsim.Addr, data []byte) {
		pe, seen := a.engines[from]
		if !seen {
			if sh.node.draining.Load() {
				// Lame duck: no engines for new peers. Their sender sees
				// plain loss and retries elsewhere or gives up.
				sh.obs.Inc(obs.DropDraining)
				return
			}
			if len(a.engines) >= maxPeers {
				// Peer table full: spoofed-source sweeps stop here.
				sh.obs.Inc(obs.DropPeerLimit)
				return
			}
			pe = &peerEngine{h: accept(sh.loop, fp, from, id)}
			a.engines[from] = pe
			sh.armIdleSweep()
		}
		pe.lastSeen = sh.loop.Now()
		if pe.h != nil {
			pe.h(from, data)
		}
	})
}

// armIdleSweep starts the shard's recurring idle-expiry timer (once,
// lazily, on the first served peer) when Config.IdleTimeout is set. The
// sweep runs on the shard's own timing wheel — the same loop that owns
// the peer tables — so expiry needs no locks: it walks every acceptor,
// deletes peers idle past the timeout (counted as flows_expired), and
// rearms itself.
func (s *Shard) armIdleSweep() {
	idle := s.node.cfg.IdleTimeout
	if idle <= 0 || s.sweeping {
		return
	}
	s.sweeping = true
	interval := idle / 2
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	var sweep func()
	sweep = func() {
		now := s.loop.Now()
		for _, a := range s.acceptors {
			for peer, pe := range a.engines {
				if now-pe.lastSeen >= idle {
					delete(a.engines, peer)
					s.obs.Inc(obs.FlowsExpired)
				}
			}
		}
		s.loop.After(interval, sweep)
	}
	s.loop.After(interval, sweep)
}

// readLoop is one socket's reader goroutine: blocking read,
// opportunistic non-blocking burst behind it (recvmmsg where
// available), GRO bundles split back into frames, then one batch
// handoff per destination shard — many packets per wakeup, none copied
// more than once, no allocation in steady state. With SO_REUSEPORT
// there is one readLoop per shard socket; any reader may receive any
// flow's frames (the kernel steers by address hash), so each routes by
// flow id.
func (n *Node) readLoop(idx int, conn *net.UDPConn, raw syscall.RawConn) {
	defer n.wg.Done()
	defer n.readerWg.Done()
	// Reader-side events (malformed drops, GRO coalescing) are counted
	// into the reading socket's own stats shard: with SO_REUSEPORT that
	// is this reader's dedicated block, under a single shared socket it
	// is shard 0. Frame/byte counts land on the *owning* shard when the
	// frame is delivered.
	rs := n.stats.Shard(idx % n.stats.NumShards())
	names := make(map[netip.AddrPort]netsim.Addr)
	pending := make([]*batch, len(n.shards))
	// One byte past MaxPacket: a larger datagram the kernel would
	// silently truncate to the buffer size then reads as MaxPacket+1,
	// so the route() oversize guard catches it instead of delivering a
	// truncated-but-plausible frame.
	scratchSize := n.cfg.MaxPacket + 1
	burst := n.cfg.Batch
	var oob []byte
	if n.gro {
		// Coalesced deliveries are only bounded by the UDP maximum.
		scratchSize = groDatagramSize
		if burst > groBurst {
			burst = groBurst
		}
		oob = make([]byte, 64)
	}
	scratch := make([]byte, scratchSize)
	br := newBurstReader(burst, scratchSize)
	for {
		nb, oobn, _, ap, err := conn.ReadMsgUDPAddrPort(scratch, oob)
		if err != nil {
			if n.closed() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue // transient socket error: keep serving
		}
		seg := 0
		if oobn > 0 {
			seg = parseGROCmsg(oob[:oobn])
		}
		n.routeDatagram(pending, names, rs, ap, scratch[:nb], seg)
		for {
			count := br.read(raw)
			for i := 0; i < count; i++ {
				data, from, seg := br.packet(i)
				if !from.IsValid() {
					rs.Inc(obs.DropBadSource)
					continue
				}
				n.routeDatagram(pending, names, rs, from, data, seg)
			}
			if count < br.capacity() || count == 0 {
				break // socket drained (or burst reads unavailable)
			}
		}
		n.dispatch(pending)
	}
}

func (n *Node) closed() bool {
	select {
	case <-n.done:
		return true
	default:
		return false
	}
}

// routeDatagram feeds one received datagram to route, splitting
// GRO-coalesced bundles (seg > 0) back into their wire frames first.
func (n *Node) routeDatagram(pending []*batch, names map[netip.AddrPort]netsim.Addr, rs *obs.Shard, ap netip.AddrPort, data []byte, seg int) {
	if seg <= 0 || len(data) <= seg {
		n.route(pending, names, rs, ap, data)
		return
	}
	rs.Inc(obs.GROBundles)
	for off := 0; off < len(data); off += seg {
		end := off + seg
		if end > len(data) {
			end = len(data)
		}
		rs.Inc(obs.GROSegments)
		n.route(pending, names, rs, ap, data[off:end])
	}
}

// route validates the mux header and appends the frame to the owning
// shard's pending batch, handing the batch over once full. Oversize
// frames (possible once GRO widens the receive buffers past MaxPacket)
// are dropped here like any other malformed input, each under its own
// drop-reason counter.
func (n *Node) route(pending []*batch, names map[netip.AddrPort]netsim.Addr, rs *obs.Shard, ap netip.AddrPort, data []byte) {
	if len(data) < 2 || data[1] != ^data[0] {
		rs.Inc(obs.DropBadHeader)
		return
	}
	if len(data) > n.cfg.MaxPacket {
		rs.Inc(obs.DropOversize)
		return
	}
	si := int(data[0]) % len(n.shards)
	b := pending[si]
	if b == nil {
		select {
		case b = <-n.free:
			pending[si] = b
		default:
			// Pool dry: every batch is queued at or being chewed by some
			// shard — the node is overloaded. Shed this frame rather than
			// block the reader behind the slowest shard: a stalled reader
			// backs traffic up into the kernel buffer and then drops
			// *there*, invisibly and for every shard at once.
			n.shards[si].obs.Inc(obs.Sheds)
			return
		}
	}
	from, ok := names[ap]
	if !ok {
		// The name cache is bounded: a spoofed-source sweep would
		// otherwise grow it without limit. Resetting loses only cached
		// strings; legitimate peers are re-interned on their next packet.
		if len(names) >= maxPeerNames {
			clear(names)
		}
		canonical := netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
		from = netsim.Addr(canonical.String())
		names[ap] = from
	}
	off := len(b.buf)
	b.buf = append(b.buf, data...)
	b.pkts = append(b.pkts, pkt{from: from, data: b.buf[off:]})
	if len(b.pkts) == cap(b.pkts) {
		n.handOff(si, b)
		pending[si] = nil
	}
}

// dispatch hands every non-empty pending batch to its shard.
func (n *Node) dispatch(pending []*batch) {
	for si, b := range pending {
		if b == nil {
			continue
		}
		n.handOff(si, b)
		pending[si] = nil
	}
}

// handOff delivers a full batch to shard si without ever blocking the
// reader. When the shard's inbox is full the oldest queued batch is
// shed — counted per frame and recycled — to make room for the newest:
// under overload the freshest traffic carries the acks and
// retransmissions most likely to still matter, while the oldest has
// already aged the longest in the queue. If another producer wins the
// refilled slot, the new batch is shed instead; either way exactly one
// batch's worth of frames is dropped and the reader never stalls.
func (n *Node) handOff(si int, b *batch) {
	sh := n.shards[si]
	select {
	case sh.in <- b:
		return
	default:
	}
	select {
	case old, ok := <-sh.in:
		if ok {
			n.shed(sh, old)
		}
	default:
	}
	select {
	case sh.in <- b:
	default:
		n.shed(sh, b)
	}
}

// shed counts a batch's frames against the overload policy and recycles
// it.
func (n *Node) shed(sh *Shard, b *batch) {
	sh.obs.Add(obs.Sheds, uint64(len(b.pkts)))
	b.pkts = b.pkts[:0]
	b.buf = b.buf[:0]
	n.free <- b
}

// outPkt is one staged outbound packet; the payload lives in the
// shard's staging buffer.
type outPkt struct {
	to       netip.AddrPort
	off, end int
}

// Shard is one worker event loop: a Loop (timers), a Mux (flow
// framing), the engines attached to its flows, its own socket (under
// SO_REUSEPORT) and a staging area for this wakeup's outbound packets.
// Everything in it belongs to its own goroutine.
type Shard struct {
	node *Node
	idx  int
	loop *Loop
	obs  *obs.Shard   // this shard's stats block (same index in node.stats)
	conn *net.UDPConn // the shard's send socket
	raw  syscall.RawConn
	in   chan *batch
	call chan func()
	mux  *netsim.Mux
	port *shardPort

	// Outbound staging: packets queued by engines during one wakeup,
	// flushed in one batch before the loop blocks again.
	out    []outPkt
	outBuf []byte
	sender *burstSender
	peers  map[netsim.Addr]netip.AddrPort

	// faults is this shard's private injector compiled from Config.Faults
	// (nil when chaos is off); consulted on every staged send.
	faults *faults.Injector
	// acceptors are the served flows owned by this shard, registered so
	// the idle sweep can walk their peer tables.
	acceptors []*acceptor
	sweeping  bool // idle sweep timer armed
}

func newShard(n *Node, idx int) *Shard {
	s := &Shard{
		node:   n,
		idx:    idx,
		loop:   newLoop(n.start),
		obs:    n.stats.Shard(idx),
		conn:   n.conns[idx%len(n.conns)],
		raw:    n.raws[idx%len(n.raws)],
		in:     make(chan *batch, 4),
		call:   make(chan func(), 16),
		out:    make([]outPkt, 0, n.cfg.Batch),
		outBuf: make([]byte, 0, n.cfg.Batch*n.cfg.MaxPacket),
		sender: newBurstSender(n.cfg.Batch),
		peers:  make(map[netsim.Addr]netip.AddrPort),
	}
	s.loop.obs = s.obs
	s.port = &shardPort{shard: s}
	s.mux = netsim.NewMux(s.port)
	if n.cfg.Faults != nil {
		// Validated at Listen; the shard index keys an independent but
		// individually reproducible PRNG stream per shard.
		s.faults = n.cfg.Faults.MustInstance(int64(idx))
	}
	return s
}

// do runs fn inside the shard loop and waits for it. The done close is
// deferred so a panicking fn (contained by the loop's recovery) still
// releases the waiter.
func (s *Shard) do(fn func()) error {
	done := make(chan struct{})
	select {
	case s.call <- func() { defer close(done); fn() }:
	case <-s.node.done:
		return ErrClosed
	}
	select {
	case <-done:
		return nil
	case <-s.node.done:
		// The loop may already have exited; don't hang on shutdown.
		select {
		case <-done:
			return nil
		case <-time.After(100 * time.Millisecond):
			return ErrClosed
		}
	}
}

// run is the shard's event loop. Each wakeup: drain whatever is ready
// (inbound batches, cross-goroutine calls, due timers), then flush the
// staged writes in one burst and block again.
func (s *Shard) run() {
	defer s.node.wg.Done()
	defer s.node.shardWg.Done()
	tm := time.NewTimer(time.Hour)
	if !tm.Stop() {
		<-tm.C
	}
	for {
		s.flush()
		var timerC <-chan time.Time
		if at, ok := s.loop.next(); ok {
			d := at - s.loop.Now()
			if d <= 0 {
				s.loop.runDue()
				continue
			}
			tm.Reset(d)
			timerC = tm.C
		}
		select {
		case b, ok := <-s.in:
			if !ok {
				s.flush()
				return
			}
			s.deliver(b)
		case fn := <-s.call:
			s.loop.shielded(fn)
			s.loop.runPosted()
		case <-timerC:
			s.loop.runDue()
		}
		// Opportunistically drain queued work before paying for another
		// flush + select round trip.
		for {
			select {
			case b, ok := <-s.in:
				if !ok {
					s.flush()
					return
				}
				s.deliver(b)
				continue
			case fn := <-s.call:
				s.loop.shielded(fn)
				s.loop.runPosted()
				continue
			default:
			}
			break
		}
		if timerC != nil && !tm.Stop() {
			select {
			case <-tm.C:
			default:
			}
		}
		s.loop.runDue()
	}
}

// deliver feeds one batch of frames to the shard's mux and recycles it,
// counting every frame against this shard (the owning loop is the
// single writer of its frames_in/bytes_in, so the adds never contend).
func (s *Shard) deliver(b *batch) {
	trace := s.node.stats.TraceOn()
	for i := range b.pkts {
		p := &b.pkts[i]
		s.obs.Inc(obs.FramesIn)
		s.obs.Add(obs.BytesIn, uint64(len(p.data)))
		if trace {
			s.obs.Ring().Record(s.loop.Now(), obs.KindDeliver, p.data[0], len(p.data), 0, 0)
		}
		if h := s.port.handler; h != nil {
			s.loop.shieldHandler(h, p.from, p.data)
		}
		s.loop.runPosted()
	}
	b.pkts = b.pkts[:0]
	b.buf = b.buf[:0]
	s.node.free <- b
}

// flush writes every staged packet in one burst on the shard's own
// socket (sendmmsg + GSO coalescing where available). Socket refusals
// are dropped like wire loss; the sender counts them by reason
// (drop_send_error / drop_send_family) along with GSO coalescing stats.
func (s *Shard) flush() {
	if len(s.out) == 0 {
		return
	}
	s.sender.send(s, s.out, s.outBuf)
	s.out = s.out[:0]
	s.outBuf = s.outBuf[:0]
}

func (s *Shard) resolve(to netsim.Addr) (netip.AddrPort, error) {
	if ap, ok := s.peers[to]; ok {
		return ap, nil
	}
	ap, err := netip.ParseAddrPort(string(to))
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("%w: %q: %v", ErrBadAddr, to, err)
	}
	ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	s.peers[to] = ap
	return ap, nil
}

// shardPort is the physical netsim.Port a shard's Mux wraps: Send
// stages a packet for this wakeup's flush; received frames are pushed
// into the handler (the mux's dispatch) by the shard loop.
type shardPort struct {
	shard   *Shard
	handler func(from netsim.Addr, data []byte)
}

var _ netsim.Port = (*shardPort)(nil)

// Addr returns the node's local address.
func (p *shardPort) Addr() netsim.Addr { return p.shard.node.addr }

// Send stages data for the shard's next flush. The bytes are copied
// into the staging buffer immediately (callers reuse their encode
// buffers, exactly as with netsim.Endpoint.Send).
func (p *shardPort) Send(to netsim.Addr, data []byte) error {
	s := p.shard
	if len(data) > s.node.cfg.MaxPacket {
		// Counted, not just returned: engines historically ignore Send
		// errors (the simulator's Send cannot fail this way), so without
		// the counter an oversize frame vanished without a trace.
		s.obs.Inc(obs.DropSendOversize)
		return fmt.Errorf("rtnet: packet %d bytes exceeds MaxPacket %d", len(data), s.node.cfg.MaxPacket)
	}
	ap, err := s.resolve(to)
	if err != nil {
		return err
	}
	s.obs.Inc(obs.FramesOut)
	s.obs.Add(obs.BytesOut, uint64(len(data)))
	if s.node.stats.TraceOn() && len(data) > 0 {
		s.obs.Ring().Record(s.loop.Now(), obs.KindSend, data[0], len(data), 0, 0)
	}
	if s.faults != nil {
		// Chaos interposer, mirroring the netsim link hook: drops vanish
		// before staging (the peer sees wire loss), delays re-stage a
		// copy through the timing wheel. The copy is the one allocation
		// on this path and only the delayed chaos path pays it — the
		// caller's buffer is reused the moment Send returns.
		v := s.faults.Apply(s.loop.Now())
		if v.Drop {
			s.obs.Inc(obs.DropFault)
			return nil
		}
		if v.Delay > 0 {
			delayed := append([]byte(nil), data...)
			s.loop.After(v.Delay, func() { s.stage(ap, delayed) })
			return nil
		}
	}
	s.stage(ap, data)
	return nil
}

// stage queues one packet for the shard's next flush, copying the bytes
// into the staging buffer.
func (s *Shard) stage(ap netip.AddrPort, data []byte) {
	off := len(s.outBuf)
	s.outBuf = append(s.outBuf, data...)
	s.out = append(s.out, outPkt{to: ap, off: off, end: len(s.outBuf)})
}

// SetHandler installs the receive callback (the shard's mux dispatch).
func (p *shardPort) SetHandler(fn func(from netsim.Addr, data []byte)) { p.handler = fn }

// ObsShard exposes the shard's stats block through the port (obs.Source),
// so the Mux wrapping it counts its drops into the right shard.
func (p *shardPort) ObsShard() *obs.Shard { return p.shard.obs }
