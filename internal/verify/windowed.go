package verify

// Sliding-window ARQ models: Go-Back-N and Selective Repeat. These are
// the configurations the sequential checker could not drive far — the
// window multiplies the in-flight state and the reordering channel
// variants multiply the interleavings — and the reason the parallel
// engine exists (DESIGN.md §12).
//
// Both models bound the session: the sender transmits at most Total
// distinct packets, and the receiver counts accepted packets. The
// integrity half of each invariant — "the receiver has not accepted more
// packets than the sender sent" — is what catches sequence-number
// aliasing: when the sequence space is too small (GBN needs
// SeqSpace >= Window+1, SR with window 2 needs SeqSpace >= 4), a
// retransmitted old packet is indistinguishable from a new one and the
// receiver double-counts it. Those undersized configurations are kept as
// seeded bugs the verification gate must catch.

import (
	"fmt"

	"protodsl/internal/expr"
	"protodsl/internal/fsm"
)

// GBNOptions parameterises the Go-Back-N model.
type GBNOptions struct {
	// SeqSpace is the sequence-number modulus (2..64). Correct GBN needs
	// SeqSpace >= Window+1; SeqSpace == Window is the classic bug.
	SeqSpace int
	// Window is the sender window (1..8, <= SeqSpace).
	Window int
	// Total bounds the session: distinct packets sent (1..200).
	Total int
	// Capacity bounds each channel.
	Capacity int
	// Lossy adds drop moves; Reorder makes both channels reordering.
	Lossy   bool
	Reorder bool
}

// BuildGBN assembles the Go-Back-N sender/receiver system: sender index
// 0 (vars base, outst, snd), receiver index 1 (vars expected, got),
// data route 0 and ack route 1.
func BuildGBN(opts GBNOptions) (*System, error) {
	if err := windowedValidate(opts.SeqSpace, opts.Total, opts.Capacity); err != nil {
		return nil, err
	}
	if opts.Window < 1 || opts.Window > 8 || opts.Window > opts.SeqSpace {
		return nil, fmt.Errorf("verify: GBN window must be 1..8 and <= SeqSpace, got %d", opts.Window)
	}
	n, w, total := opts.SeqSpace, opts.Window, opts.Total

	sender := &fsm.Spec{
		Name: fmt.Sprintf("GBNSender%dw%d", n, w),
		Vars: []fsm.Var{
			{Name: "base", Type: expr.TU8},
			{Name: "outst", Type: expr.TU8},
			{Name: "snd", Type: expr.TU8},
		},
		States: []fsm.State{
			{Name: "Ready", Init: true},
			{Name: "Done", Final: true},
		},
		Events: []fsm.Event{
			{Name: "SEND"},
			{Name: "ACK", Params: []fsm.Param{{Name: "a", Type: expr.TMsg("AckM")}}},
			{Name: "TIMEOUT"},
			{Name: "FINISH"},
		},
		Transitions: []fsm.Transition{
			{Name: "send", From: "Ready", Event: "SEND", To: "Ready",
				Guard: expr.MustParse(fmt.Sprintf("outst < %d && snd < %d", w, total)),
				Assigns: []fsm.Assign{
					{Var: "outst", Expr: expr.MustParse("outst + 1")},
					{Var: "snd", Expr: expr.MustParse("snd + 1")},
				},
				Outputs: []fsm.Output{{Message: "Pkt", Fields: map[string]expr.Expr{
					"seq": expr.MustParse(fmt.Sprintf("(base + outst) %% %d", n)),
				}}}},
			// Cumulative ack: a.seq acknowledges everything up to and
			// including it. In-window test and slide distance are both
			// computed mod n against the pre-state base.
			{Name: "ack", From: "Ready", Event: "ACK", To: "Ready",
				Guard: expr.MustParse(fmt.Sprintf("((a.seq + %d - base) %% %d) < outst", n, n)),
				Assigns: []fsm.Assign{
					{Var: "base", Expr: expr.MustParse(fmt.Sprintf("(a.seq + 1) %% %d", n))},
					{Var: "outst", Expr: expr.MustParse(fmt.Sprintf("outst - (((a.seq + %d - base) %% %d) + 1)", n, n))},
				}},
			{Name: "finish", From: "Ready", Event: "FINISH", To: "Done",
				Guard: expr.MustParse("outst == 0")},
		},
		Messages: modelMessages(),
	}
	// Go-back-N retransmission: a timeout resends the entire window.
	// Output lists are static per transition, so one transition per
	// possible outstanding count carries exactly that many packets.
	for k := 1; k <= w; k++ {
		tr := fsm.Transition{
			Name: fmt.Sprintf("rexmit%d", k), From: "Ready", Event: "TIMEOUT", To: "Ready",
			Guard: expr.MustParse(fmt.Sprintf("outst == %d", k)),
		}
		for i := 0; i < k; i++ {
			tr.Outputs = append(tr.Outputs, fsm.Output{Message: "Pkt", Fields: map[string]expr.Expr{
				"seq": expr.MustParse(fmt.Sprintf("(base + %d) %% %d", i, n)),
			}})
		}
		sender.Transitions = append(sender.Transitions, tr)
	}

	receiver := &fsm.Spec{
		Name: fmt.Sprintf("GBNReceiver%d", n),
		Vars: []fsm.Var{
			{Name: "expected", Type: expr.TU8},
			{Name: "got", Type: expr.TU8},
		},
		// Like the stop-and-wait model receiver, Recv declares no final
		// state (a liveness warning, not an error): the receiver serves
		// forever. GBN/SR configurations are checked without CheckDeadlock.
		States: []fsm.State{{Name: "Recv", Init: true}},
		Events: []fsm.Event{
			{Name: "RECV", Params: []fsm.Param{{Name: "p", Type: expr.TMsg("Pkt")}}},
		},
		Transitions: []fsm.Transition{
			{Name: "accept", From: "Recv", Event: "RECV", To: "Recv",
				Guard: expr.MustParse("p.seq == expected"),
				Assigns: []fsm.Assign{
					{Var: "expected", Expr: expr.MustParse(fmt.Sprintf("(expected + 1) %% %d", n))},
					{Var: "got", Expr: expr.MustParse("got + 1")},
				},
				Outputs: []fsm.Output{{Message: "AckM", Fields: map[string]expr.Expr{
					"seq": expr.MustParse("p.seq"),
				}}}},
			// Out-of-order packet: re-ack the last in-order sequence
			// number (cumulative), which is expected-1 mod n.
			{Name: "reack", From: "Recv", Event: "RECV", To: "Recv",
				Guard: expr.MustParse("p.seq != expected"),
				Outputs: []fsm.Output{{Message: "AckM", Fields: map[string]expr.Expr{
					"seq": expr.MustParse(fmt.Sprintf("(expected + %d - 1) %% %d", n, n)),
				}}}},
		},
		Messages: modelMessages(),
	}

	return &System{
		Specs: []*fsm.Spec{sender, receiver},
		Routes: []Route{
			{From: 0, Message: "Pkt", To: 1, Event: "RECV", Param: "p",
				Capacity: opts.Capacity, Lossy: opts.Lossy, Reorder: opts.Reorder},
			{From: 1, Message: "AckM", To: 0, Event: "ACK", Param: "a",
				Capacity: opts.Capacity, Lossy: opts.Lossy, Reorder: opts.Reorder},
		},
		Env: []EnvEvent{
			{Machine: 0, Event: "SEND"},
			{Machine: 0, Event: "TIMEOUT"},
			{Machine: 0, Event: "FINISH"},
		},
	}, nil
}

// GBNInvariant is the Go-Back-N safety property: the receiver stays
// inside the sender's window and never accepts more packets than were
// sent.
func GBNInvariant(seqSpace int) Invariant {
	n := uint64(seqSpace)
	return Invariant{
		Name: "gbn-window",
		Fn: func(s *Snapshot) error {
			base := s.Vars[0]["base"].AsUint()
			outst := s.Vars[0]["outst"].AsUint()
			snd := s.Vars[0]["snd"].AsUint()
			expected := s.Vars[1]["expected"].AsUint()
			got := s.Vars[1]["got"].AsUint()
			if diff := (expected + n - base) % n; diff > outst {
				return fmt.Errorf("receiver expected %d is %d past sender base %d (outstanding %d)",
					expected, diff, base, outst)
			}
			if got > snd {
				return fmt.Errorf("receiver accepted %d packets, sender sent only %d", got, snd)
			}
			return nil
		},
	}
}

// SROptions parameterises the Selective Repeat model.
type SROptions struct {
	// SeqSpace is the sequence-number modulus (2..64). Correct SR with
	// window W needs SeqSpace >= 2W; anything smaller is the classic
	// aliasing bug (SeqSpace 3 for the default window of 2).
	SeqSpace int
	// Window is the sender/receiver window (1..4); 0 selects 2, the
	// historical fixed size.
	Window int
	// Total bounds the session: distinct packets sent (1..200).
	Total int
	// Capacity bounds each channel.
	Capacity int
	// Lossy adds drop moves; Reorder makes both channels reordering.
	Lossy   bool
	Reorder bool
}

// maskRun counts the consecutive set bits of m starting at bit 0: how
// many already-acked (or already-buffered) successors slide out together
// with the packet at the window base.
func maskRun(m int) int {
	r := 0
	for m&1 == 1 {
		r++
		m >>= 1
	}
	return r
}

// BuildSR assembles the Selective Repeat system with a window of W:
// sender index 0 (vars base, outst, ackm, snd), receiver index 1 (vars
// expected, buf, got). Each outstanding packet has its own timeout
// stimulus (TIMEOUTk retransmits base+k) — retransmissions are
// selective, not go-back.
//
// The guard language has no bitwise operators, so the out-of-order
// bookkeeping — which of the in-flight successors are already acked
// (sender ackm) or buffered (receiver buf) — is modelled by enumerating
// one transition per concrete mask value: bit k-1 of the mask stands
// for offset base+k (resp. expected+k). With the default window of 2
// the masks collapse to the single 0/1 flag the fixed-window model
// used, so existing configurations explore the identical state space.
func BuildSR(opts SROptions) (*System, error) {
	if err := windowedValidate(opts.SeqSpace, opts.Total, opts.Capacity); err != nil {
		return nil, err
	}
	w := opts.Window
	if w == 0 {
		w = 2
	}
	if w < 1 || w > 4 {
		return nil, fmt.Errorf("verify: SR window must be 1..4, got %d", w)
	}
	n, total := opts.SeqSpace, opts.Total
	seq := func(offset int) expr.Expr {
		if offset == 0 {
			return expr.MustParse("base")
		}
		return expr.MustParse(fmt.Sprintf("(base + %d) %% %d", offset, n))
	}

	sender := &fsm.Spec{
		Name: fmt.Sprintf("SRSender%dw%d", n, w),
		Vars: []fsm.Var{
			{Name: "base", Type: expr.TU8},
			{Name: "outst", Type: expr.TU8},
			{Name: "ackm", Type: expr.TU8}, // bit k-1: base+k already acked
			{Name: "snd", Type: expr.TU8},
		},
		States: []fsm.State{
			{Name: "Ready", Init: true},
			{Name: "Done", Final: true},
		},
		Events: []fsm.Event{
			{Name: "SEND"},
			{Name: "ACK", Params: []fsm.Param{{Name: "a", Type: expr.TMsg("AckM")}}},
			{Name: "FINISH"},
		},
		Transitions: []fsm.Transition{
			{Name: "send", From: "Ready", Event: "SEND", To: "Ready",
				Guard: expr.MustParse(fmt.Sprintf("outst < %d && snd < %d", w, total)),
				Assigns: []fsm.Assign{
					{Var: "outst", Expr: expr.MustParse("outst + 1")},
					{Var: "snd", Expr: expr.MustParse("snd + 1")},
				},
				Outputs: []fsm.Output{{Message: "Pkt", Fields: map[string]expr.Expr{
					"seq": expr.MustParse(fmt.Sprintf("(base + outst) %% %d", n)),
				}}}},
			{Name: "finish", From: "Ready", Event: "FINISH", To: "Done",
				Guard: expr.MustParse("outst == 0")},
		},
		Messages: modelMessages(),
	}
	for _, k := range timeoutOffsets(w) {
		sender.Events = append(sender.Events, fsm.Event{Name: fmt.Sprintf("TIMEOUT%d", k)})
	}
	// Ack handling, one transition per concrete (outst, ackm) pair. An
	// ack for base slides past it and every consecutively-acked
	// successor; an ack for an unacked successor marks its mask bit; any
	// other ack matches no guard and is consumed as a stale duplicate.
	for o := 1; o <= w; o++ {
		for m := 0; m < 1<<(o-1); m++ {
			d := 1 + maskRun(m)
			sender.Transitions = append(sender.Transitions, fsm.Transition{
				Name: fmt.Sprintf("ackslide_o%d_m%d", o, m), From: "Ready", Event: "ACK", To: "Ready",
				Guard: expr.MustParse(fmt.Sprintf("a.seq == base && outst == %d && ackm == %d", o, m)),
				Assigns: []fsm.Assign{
					{Var: "base", Expr: expr.MustParse(fmt.Sprintf("(base + %d) %% %d", d, n))},
					{Var: "outst", Expr: expr.MustParse(fmt.Sprintf("%d", o-d))},
					{Var: "ackm", Expr: expr.MustParse(fmt.Sprintf("%d", m>>d))},
				},
			})
			for k := 1; k < o; k++ {
				if m&(1<<(k-1)) != 0 {
					continue
				}
				sender.Transitions = append(sender.Transitions, fsm.Transition{
					Name: fmt.Sprintf("ackmark_o%d_m%d_k%d", o, m, k), From: "Ready", Event: "ACK", To: "Ready",
					Guard: expr.MustParse(fmt.Sprintf("a.seq == ((base + %d) %% %d) && outst == %d && ackm == %d", k, n, o, m)),
					Assigns: []fsm.Assign{
						{Var: "ackm", Expr: expr.MustParse(fmt.Sprintf("%d", m|1<<(k-1)))},
					},
				})
			}
		}
	}
	// Selective retransmission: TIMEOUTk resends base+k alone. The base
	// is by construction never acked while outstanding; higher offsets
	// retransmit only while their mask bit is clear.
	sender.Transitions = append(sender.Transitions, fsm.Transition{
		Name: "rexmit0", From: "Ready", Event: "TIMEOUT0", To: "Ready",
		Guard:   expr.MustParse("outst >= 1"),
		Outputs: []fsm.Output{{Message: "Pkt", Fields: map[string]expr.Expr{"seq": seq(0)}}},
	})
	for k := 1; k < w; k++ {
		for o := k + 1; o <= w; o++ {
			for m := 0; m < 1<<(o-1); m++ {
				if m&(1<<(k-1)) != 0 {
					continue
				}
				sender.Transitions = append(sender.Transitions, fsm.Transition{
					Name: fmt.Sprintf("rexmit%d_o%d_m%d", k, o, m), From: "Ready", Event: fmt.Sprintf("TIMEOUT%d", k), To: "Ready",
					Guard:   expr.MustParse(fmt.Sprintf("outst == %d && ackm == %d", o, m)),
					Outputs: []fsm.Output{{Message: "Pkt", Fields: map[string]expr.Expr{"seq": seq(k)}}},
				})
			}
		}
	}

	receiver := &fsm.Spec{
		Name: fmt.Sprintf("SRReceiver%dw%d", n, w),
		Vars: []fsm.Var{
			{Name: "expected", Type: expr.TU8},
			{Name: "buf", Type: expr.TU8}, // bit k-1: expected+k buffered out of order
			{Name: "got", Type: expr.TU8},
		},
		// No final state, matching the other model receivers; see the GBN
		// receiver comment.
		States: []fsm.State{{Name: "Recv", Init: true}},
		Events: []fsm.Event{
			{Name: "RECV", Params: []fsm.Param{{Name: "p", Type: expr.TMsg("Pkt")}}},
		},
		Messages: modelMessages(),
	}
	ackOut := []fsm.Output{{Message: "AckM", Fields: map[string]expr.Expr{
		"seq": expr.MustParse("p.seq"),
	}}}
	// In-order arrival: deliver it plus every consecutively-buffered
	// successor, per concrete buffer mask.
	for m := 0; m < 1<<(w-1); m++ {
		d := 1 + maskRun(m)
		receiver.Transitions = append(receiver.Transitions, fsm.Transition{
			Name: fmt.Sprintf("inorder_m%d", m), From: "Recv", Event: "RECV", To: "Recv",
			Guard: expr.MustParse(fmt.Sprintf("p.seq == expected && buf == %d", m)),
			Assigns: []fsm.Assign{
				{Var: "expected", Expr: expr.MustParse(fmt.Sprintf("(expected + %d) %% %d", d, n))},
				{Var: "buf", Expr: expr.MustParse(fmt.Sprintf("%d", m>>d))},
				{Var: "got", Expr: expr.MustParse(fmt.Sprintf("got + %d", d))},
			},
			Outputs: ackOut,
		})
		// Out-of-order within the window: buffer (set the bit) or, when
		// already buffered, just re-ack the duplicate.
		for k := 1; k < w; k++ {
			guard := fmt.Sprintf("p.seq == ((expected + %d) %% %d) && buf == %d", k, n, m)
			if m&(1<<(k-1)) == 0 {
				receiver.Transitions = append(receiver.Transitions, fsm.Transition{
					Name: fmt.Sprintf("buffer_m%d_k%d", m, k), From: "Recv", Event: "RECV", To: "Recv",
					Guard: expr.MustParse(guard),
					Assigns: []fsm.Assign{
						{Var: "buf", Expr: expr.MustParse(fmt.Sprintf("%d", m|1<<(k-1)))},
					},
					Outputs: ackOut,
				})
			} else {
				receiver.Transitions = append(receiver.Transitions, fsm.Transition{
					Name: fmt.Sprintf("bufdup_m%d_k%d", m, k), From: "Recv", Event: "RECV", To: "Recv",
					Guard:   expr.MustParse(guard),
					Outputs: ackOut,
				})
			}
		}
	}
	// Below the receive window: an already-delivered packet whose ack
	// was lost — re-ack it.
	receiver.Transitions = append(receiver.Transitions, fsm.Transition{
		Name: "old_dup", From: "Recv", Event: "RECV", To: "Recv",
		Guard:   expr.MustParse(fmt.Sprintf("((p.seq + %d - expected) %% %d) >= %d", n, n, w)),
		Outputs: ackOut,
	})

	env := []EnvEvent{
		{Machine: 0, Event: "SEND"},
	}
	for _, k := range timeoutOffsets(w) {
		env = append(env, EnvEvent{Machine: 0, Event: fmt.Sprintf("TIMEOUT%d", k)})
	}
	env = append(env, EnvEvent{Machine: 0, Event: "FINISH"})

	return &System{
		Specs: []*fsm.Spec{sender, receiver},
		Routes: []Route{
			{From: 0, Message: "Pkt", To: 1, Event: "RECV", Param: "p",
				Capacity: opts.Capacity, Lossy: opts.Lossy, Reorder: opts.Reorder},
			{From: 1, Message: "AckM", To: 0, Event: "ACK", Param: "a",
				Capacity: opts.Capacity, Lossy: opts.Lossy, Reorder: opts.Reorder},
		},
		Env: env,
	}, nil
}

func timeoutOffsets(w int) []int {
	out := make([]int, w)
	for k := range out {
		out[k] = k
	}
	return out
}

// SRInvariant is the Selective Repeat safety property for the default
// window of 2; SRInvariantW is the general form.
func SRInvariant(seqSpace int) Invariant { return SRInvariantW(seqSpace, 2) }

// SRInvariantW is the Selective Repeat safety property: the receiver
// stays within the window of the sender's base, and delivered+buffered
// packets never exceed the packets actually sent.
func SRInvariantW(seqSpace, window int) Invariant {
	n, w := uint64(seqSpace), uint64(window)
	return Invariant{
		Name: "sr-window",
		Fn: func(s *Snapshot) error {
			base := s.Vars[0]["base"].AsUint()
			snd := s.Vars[0]["snd"].AsUint()
			expected := s.Vars[1]["expected"].AsUint()
			buf := s.Vars[1]["buf"].AsUint()
			got := s.Vars[1]["got"].AsUint()
			if diff := (expected + n - base) % n; diff > w {
				return fmt.Errorf("receiver expected %d is %d past sender base %d", expected, diff, base)
			}
			buffered := uint64(0)
			for m := buf; m != 0; m >>= 1 {
				buffered += m & 1
			}
			if got+buffered > snd {
				return fmt.Errorf("receiver holds %d packets (%d delivered, %d buffered), sender sent only %d",
					got+buffered, got, buffered, snd)
			}
			return nil
		},
	}
}

func windowedValidate(seqSpace, total, capacity int) error {
	if seqSpace < 2 || seqSpace > 64 {
		return fmt.Errorf("verify: SeqSpace must be 2..64, got %d", seqSpace)
	}
	if total < 1 || total > 200 {
		return fmt.Errorf("verify: Total must be 1..200, got %d", total)
	}
	if capacity < 1 {
		return fmt.Errorf("verify: Capacity must be >= 1, got %d", capacity)
	}
	return nil
}
