package dsl

// HandshakeSource is the canonical .pdsl definition of the connection
// lifecycle family (DESIGN.md §14): a 3-way connect with a stateless
// server cookie, half-close teardown, heartbeat exchange and TIME_WAIT
// absorption of stale frames. internal/session compiles this source to
// drive the rtnet accept path; cmd/protoverify explores both machines
// standalone and internal/verify models the client/server product.
const HandshakeSource = `// Connection lifecycle: cookie handshake, half-close teardown, TIME_WAIT.
protocol handshake {
    // Control frames share the data socket with ARQ traffic: a magic
    // lead byte (199) plus a kind discriminator keep them apart from
    // data packets, and a sum8 trailer rejects corrupted control bytes.
    message Syn {
        magic: u8
        kind: u8
        nonce: u32
        chk: u8 = checksum sum8
    }

    message SynAck {
        magic: u8
        kind: u8
        nonce: u32
        cookie: u32
        chk: u8 = checksum sum8
    }

    message AckC {
        magic: u8
        kind: u8
        nonce: u32
        cookie: u32
        chk: u8 = checksum sum8
    }

    message Fin {
        magic: u8
        kind: u8
        chk: u8 = checksum sum8
    }

    message FinAck {
        magic: u8
        kind: u8
        chk: u8 = checksum sum8
    }

    message Beat {
        magic: u8
        kind: u8
        seq: u32
        chk: u8 = checksum sum8
    }

    message BeatAck {
        magic: u8
        kind: u8
        seq: u32
        chk: u8 = checksum sum8
    }

    // Active opener: Closed -> SynSent -> Established -> FinWait ->
    // TimeWait -> Down. Connect retries ride the RFC 6298 estimator in
    // the engine (RETRY is the timer stimulus); TIME_WAIT absorbs stale
    // control frames so a reincarnated connection never sees them.
    machine Client {
        var cookie: u32
        // beats toggles 0/1 rather than counting: the spec only needs
        // to witness that heartbeats alternate, and a bounded variable
        // keeps exhaustive exploration finite (the engine keeps the
        // real 32-bit heartbeat sequence).
        var beats: u32

        init state Closed
        state SynSent
        state Established
        state FinWait
        state TimeWait
        final state Down

        event CONNECT(nonce: u32)
        event RETRY(nonce: u32)
        event GIVEUP
        event SYNACK(s: SynAck)
        event TICK
        event CLOSE
        event RECLOSE
        event FINACK
        event PEER_DOWN
        event EXPIRE

        on CONNECT from Closed to SynSent as connect {
            send Syn(magic: 199, kind: 1, nonce: nonce)
        }
        on RETRY from SynSent to SynSent as retry {
            send Syn(magic: 199, kind: 1, nonce: nonce)
        }
        on GIVEUP from SynSent to Down as giveup
        on SYNACK from SynSent to Established as complete {
            set cookie = s.cookie
            send AckC(magic: 199, kind: 3, nonce: s.nonce, cookie: s.cookie)
        }
        on TICK from Established to Established as beat {
            set beats = 1 - beats
            send Beat(magic: 199, kind: 6, seq: beats)
        }
        on CLOSE from Established to FinWait as close {
            send Fin(magic: 199, kind: 4)
        }
        on RECLOSE from FinWait to FinWait as reclose {
            send Fin(magic: 199, kind: 4)
        }
        on FINACK from FinWait to TimeWait as finack
        on PEER_DOWN from Established to Down as peerdown
        on PEER_DOWN from FinWait to Down as abort
        on EXPIRE from TimeWait to Down as expire

        ignore RETRY in Closed
        ignore GIVEUP in Closed
        ignore SYNACK in Closed
        ignore TICK in Closed
        ignore CLOSE in Closed
        ignore RECLOSE in Closed
        ignore FINACK in Closed
        ignore PEER_DOWN in Closed
        ignore EXPIRE in Closed
        ignore CONNECT in SynSent
        ignore TICK in SynSent
        ignore CLOSE in SynSent
        ignore RECLOSE in SynSent
        ignore FINACK in SynSent
        ignore PEER_DOWN in SynSent
        ignore EXPIRE in SynSent
        ignore CONNECT in Established
        ignore RETRY in Established
        ignore GIVEUP in Established
        ignore SYNACK in Established
        ignore RECLOSE in Established
        ignore FINACK in Established
        ignore EXPIRE in Established
        ignore CONNECT in FinWait
        ignore RETRY in FinWait
        ignore GIVEUP in FinWait
        ignore SYNACK in FinWait
        ignore TICK in FinWait
        ignore CLOSE in FinWait
        ignore EXPIRE in FinWait
        ignore CONNECT in TimeWait
        ignore RETRY in TimeWait
        ignore GIVEUP in TimeWait
        ignore SYNACK in TimeWait
        ignore TICK in TimeWait
        ignore CLOSE in TimeWait
        ignore RECLOSE in TimeWait
        ignore FINACK in TimeWait
        ignore PEER_DOWN in TimeWait
    }

    // Passive opener. Listen reflects every SYN statelessly (the cookie
    // is a pure function of the nonce at spec level; the engine uses a
    // keyed MAC) and only the valid-cookie ACKC allocates: peers moves,
    // which is the allocation event the verify model pins down.
    machine Server {
        // peers moves 0 -> 1 exactly when a valid-cookie ACKC lands:
        // the allocation witness. SYN never touches it — reflects stay
        // stateless, which is the whole point of the cookie.
        var peers: u32

        init state Listen
        state Established
        state Drained
        final state Closed

        event SYN(a: Syn)
        event ACKC(a: AckC)
        event BEAT(b: Beat)
        event FIN
        event PEER_DOWN
        event DONE

        on SYN from Listen to Listen as reflect {
            send SynAck(magic: 199, kind: 2, nonce: a.nonce, cookie: a.nonce + 1)
        }
        on ACKC from Listen to Established as accept when a.cookie == a.nonce + 1 {
            set peers = peers + 1
        }
        on ACKC from Listen to Listen as reject when a.cookie != a.nonce + 1
        on BEAT from Established to Established as beatack {
            send BeatAck(magic: 199, kind: 7, seq: b.seq)
        }
        on FIN from Established to Drained as fin {
            send FinAck(magic: 199, kind: 5)
        }
        on FIN from Drained to Drained as refin {
            send FinAck(magic: 199, kind: 5)
        }
        on PEER_DOWN from Established to Closed as peerdown
        on DONE from Drained to Closed as done

        ignore ACKC in Established
        ignore SYN in Established
        ignore DONE in Established
        ignore SYN in Drained
        ignore ACKC in Drained
        ignore BEAT in Drained
        ignore PEER_DOWN in Drained
        ignore FIN in Listen
        ignore BEAT in Listen
        ignore PEER_DOWN in Listen
        ignore DONE in Listen
    }
}
`
