// Package proof implements validation witnesses: Go's closest analogue of
// the paper's `ChkPacket : Packet → ⋆` dependent type (§3.3).
//
// A Checked[T] can only be constructed by a Validator, so possession of a
// Checked[T] value *is* evidence that the wrapped value passed every check
// the validator performs — "whenever we have a ChkPacket, we have a proof
// that the packet data is validated". Downstream code that demands a
// Checked[T] parameter can therefore skip re-validation entirely, which is
// the paper's "exploit static information … to remove any need for
// dynamic checks" claim, measured in experiment E3.
//
// Validators and Checked values are immutable after construction and
// safe to share across goroutines — a witness does not expire.
package proof

import (
	"errors"
	"fmt"
)

// ErrCheckFailed is the failure class wrapped by validation errors.
var ErrCheckFailed = errors.New("check failed")

// CheckError reports which named check rejected the value.
type CheckError struct {
	Validator string
	Check     string
	Err       error
}

// Error implements error.
func (e *CheckError) Error() string {
	return fmt.Sprintf("validator %s: check %s: %v", e.Validator, e.Check, e.Err)
}

// Unwrap exposes ErrCheckFailed and the underlying cause.
func (e *CheckError) Unwrap() error { return e.Err }

// Is matches ErrCheckFailed.
func (e *CheckError) Is(target error) bool { return target == ErrCheckFailed }

// Check is a named predicate over T. A nil returned error means the value
// passes.
type Check[T any] struct {
	Name string
	Fn   func(T) error
}

// Validator runs a fixed sequence of named checks and issues witnesses.
type Validator[T any] struct {
	name   string
	checks []Check[T]
	// names caches the full check-name list: a successful Validate always
	// establishes every check, so certificates share this one immutable
	// slice instead of allocating per call (Established() copies on read).
	names []string
}

// NewValidator builds a validator from its checks.
func NewValidator[T any](name string, checks ...Check[T]) *Validator[T] {
	cs := make([]Check[T], len(checks))
	copy(cs, checks)
	names := make([]string, len(cs))
	for i := range cs {
		names[i] = cs[i].Name
	}
	return &Validator[T]{name: name, checks: cs, names: names}
}

// Name returns the validator's name (it appears on certificates).
func (v *Validator[T]) Name() string { return v.name }

// Validate runs every check. On success it returns a Checked[T] witness
// whose certificate records which checks were established.
func (v *Validator[T]) Validate(x T) (Checked[T], error) {
	for _, c := range v.checks {
		if err := c.Fn(x); err != nil {
			return Checked[T]{}, &CheckError{Validator: v.name, Check: c.Name, Err: err}
		}
	}
	return Checked[T]{
		value: x,
		cert:  Certificate{validator: v.name, established: v.names},
		valid: true,
	}, nil
}

// Checked wraps a value together with the certificate of the checks it
// passed. The zero value is invalid; the only way to obtain a valid
// Checked[T] is through Validator.Validate.
type Checked[T any] struct {
	value T
	cert  Certificate
	valid bool
}

// Value returns the validated value.
func (c Checked[T]) Value() T { return c.value }

// Valid reports whether this witness was actually issued by a validator
// (false for zero values).
func (c Checked[T]) Valid() bool { return c.valid }

// Certificate returns the record of established checks.
func (c Checked[T]) Certificate() Certificate { return c.cert }

// Certificate records which validator issued a witness and which named
// checks it established. It corresponds to the paper's "proof (a
// certificate) that the checksum is valid and that the line count is
// correct with respect to the data".
type Certificate struct {
	validator   string
	established []string
}

// Validator returns the issuing validator's name.
func (c Certificate) Validator() string { return c.validator }

// Established returns the names of the established checks.
func (c Certificate) Established() []string {
	out := make([]string, len(c.established))
	copy(out, c.established)
	return out
}

// Establishes reports whether the named check is part of the certificate.
func (c Certificate) Establishes(check string) bool {
	for _, e := range c.established {
		if e == check {
			return true
		}
	}
	return false
}

// String renders the certificate for diagnostics.
func (c Certificate) String() string {
	return fmt.Sprintf("cert(%s: %v)", c.validator, c.established)
}
