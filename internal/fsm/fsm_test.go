package fsm

import (
	"errors"
	"testing"

	"protodsl/internal/expr"
	"protodsl/internal/wire"
)

// arqMessages returns the paper's §3.4 wire messages.
func arqMessages() map[string]*wire.Message {
	return map[string]*wire.Message{
		"Packet": {
			Name: "Packet",
			Fields: []wire.Field{
				{Name: "seq", Kind: wire.FieldUint, Bits: 8},
				{Name: "chk", Kind: wire.FieldUint, Bits: 8,
					Compute: &wire.Compute{Kind: wire.ComputeChecksum, Algo: wire.ChecksumSum8}},
				{Name: "paylen", Kind: wire.FieldUint, Bits: 16},
				{Name: "payload", Kind: wire.FieldBytes, LenKind: wire.LenField, LenField: "paylen"},
			},
		},
		"Ack": {
			Name: "Ack",
			Fields: []wire.Field{
				{Name: "seq", Kind: wire.FieldUint, Bits: 8},
				{Name: "chk", Kind: wire.FieldUint, Bits: 8,
					Compute: &wire.Compute{Kind: wire.ComputeChecksum, Algo: wire.ChecksumSum8}},
			},
		},
	}
}

// senderSpec builds the paper's ARQ sender:
//
//	data SendSt = Ready | Wait | Timeout | Sent   (each carrying seq)
//	SEND    : Ready -> Wait     (sends Packet)
//	OK      : Wait  -> Ready    (seq+1, requires matching ack)
//	FAIL    : Wait  -> Ready
//	TIMEOUT : Wait  -> Timeout
//	FINISH  : Ready -> Sent
//
// plus a RETRY: Timeout -> Ready transition so the machine can make
// progress after a timeout (the paper's sendPacket "the machine is ready
// to try again").
func senderSpec() *Spec {
	return &Spec{
		Name: "Sender",
		Vars: []Var{{Name: "seq", Type: expr.TU8}},
		States: []State{
			{Name: "Ready", Init: true},
			{Name: "Wait"},
			{Name: "Timeout"},
			{Name: "Sent", Final: true},
		},
		Events: []Event{
			{Name: "SEND", Params: []Param{{Name: "data", Type: expr.TBytes}}},
			{Name: "OK", Params: []Param{{Name: "ack", Type: expr.TMsg("Ack")}}},
			{Name: "FAIL"},
			{Name: "TIMEOUT"},
			{Name: "RETRY"},
			{Name: "FINISH"},
		},
		Transitions: []Transition{
			{Name: "send", From: "Ready", Event: "SEND", To: "Wait",
				Outputs: []Output{{Message: "Packet", Fields: map[string]expr.Expr{
					"seq":     expr.MustParse("seq"),
					"payload": expr.MustParse("data"),
				}}}},
			{Name: "ok", From: "Ready", Event: "OK", To: "Ready"}, // stale ack: no-op loop
			{Name: "ack", From: "Wait", Event: "OK", To: "Ready",
				Guard:   expr.MustParse("ack.seq == seq"),
				Assigns: []Assign{{Var: "seq", Expr: expr.MustParse("seq + 1")}}},
			{Name: "fail", From: "Wait", Event: "FAIL", To: "Ready"},
			{Name: "timeout", From: "Wait", Event: "TIMEOUT", To: "Timeout"},
			{Name: "retry", From: "Timeout", Event: "RETRY", To: "Ready"},
			{Name: "finish", From: "Ready", Event: "FINISH", To: "Sent"},
		},
		Ignores: []Ignore{
			{State: "Ready", Event: "FAIL"},
			{State: "Ready", Event: "TIMEOUT"},
			{State: "Ready", Event: "RETRY"},
			{State: "Wait", Event: "SEND"},
			{State: "Wait", Event: "RETRY"},
			{State: "Wait", Event: "FINISH"},
			{State: "Timeout", Event: "SEND"},
			{State: "Timeout", Event: "OK"},
			{State: "Timeout", Event: "FAIL"},
			{State: "Timeout", Event: "TIMEOUT"},
			{State: "Timeout", Event: "FINISH"},
		},
		Messages: arqMessages(),
	}
}

func TestCheckPaperSender(t *testing.T) {
	report := Check(senderSpec())
	if !report.OK() {
		for _, i := range report.Issues {
			t.Logf("issue: %s", i)
		}
		t.Fatal("the paper's ARQ sender must pass the static checker")
	}
	// The guarded-only (Wait, OK) pair produces a completeness warning:
	// rejection of a mismatched ack is a defined outcome.
	found := false
	for _, w := range report.Warnings() {
		if w.Class == ClassCompleteness && w.State == "Wait" && w.Event == "OK" {
			found = true
		}
	}
	if !found {
		t.Error("expected a guarded-only completeness warning for (Wait, OK)")
	}
}

func TestCheckSeededBugs(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Spec)
		class   string
		wantErr bool
	}{
		{"undeclared target state", func(s *Spec) {
			s.Transitions[0].To = "Nowhere"
		}, ClassSoundness, true},
		{"undeclared source state", func(s *Spec) {
			s.Transitions[0].From = "Nowhere"
		}, ClassSoundness, true},
		{"undeclared event", func(s *Spec) {
			s.Transitions[0].Event = "NOPE"
		}, ClassSoundness, true},
		{"outgoing from final", func(s *Spec) {
			s.Transitions = append(s.Transitions, Transition{From: "Sent", Event: "SEND", To: "Ready"})
		}, ClassSoundness, true},
		{"ill-typed guard", func(s *Spec) {
			s.Transitions[2].Guard = expr.MustParse("ack.seq + seq") // uint, not bool
		}, ClassSoundness, true},
		{"guard references unknown field", func(s *Spec) {
			s.Transitions[2].Guard = expr.MustParse("ack.nonexistent == seq")
		}, ClassSoundness, true},
		{"assign to undeclared var", func(s *Spec) {
			s.Transitions[2].Assigns = []Assign{{Var: "nope", Expr: expr.MustParse("1")}}
		}, ClassSoundness, true},
		{"assign wrong type", func(s *Spec) {
			s.Transitions[2].Assigns = []Assign{{Var: "seq", Expr: expr.MustParse("seq == 0")}}
		}, ClassSoundness, true},
		{"output missing field", func(s *Spec) {
			delete(s.Transitions[0].Outputs[0].Fields, "payload")
		}, ClassSoundness, true},
		{"output unknown message", func(s *Spec) {
			s.Transitions[0].Outputs[0].Message = "Nope"
		}, ClassSoundness, true},
		{"output supplies computed field", func(s *Spec) {
			s.Transitions[0].Outputs[0].Fields["chk"] = expr.MustParse("0")
		}, ClassSoundness, true},
		{"output unknown field", func(s *Spec) {
			s.Transitions[0].Outputs[0].Fields["bogus"] = expr.MustParse("0")
		}, ClassSoundness, true},
		{"unhandled event", func(s *Spec) {
			// Remove the ignore that covers (Timeout, SEND).
			var kept []Ignore
			for _, ig := range s.Ignores {
				if !(ig.State == "Timeout" && ig.Event == "SEND") {
					kept = append(kept, ig)
				}
			}
			s.Ignores = kept
		}, ClassCompleteness, true},
		{"ambiguous unguarded pair", func(s *Spec) {
			s.Transitions = append(s.Transitions, Transition{From: "Wait", Event: "FAIL", To: "Timeout"})
		}, ClassDeterminism, true},
		{"duplicate guard", func(s *Spec) {
			s.Transitions = append(s.Transitions, Transition{
				From: "Wait", Event: "OK", To: "Timeout", Guard: expr.MustParse("ack.seq == seq")})
		}, ClassDeterminism, true},
		{"ignore overlaps transition", func(s *Spec) {
			s.Ignores = append(s.Ignores, Ignore{State: "Ready", Event: "SEND"})
		}, ClassSoundness, true},
		{"two init states", func(s *Spec) {
			s.States[1].Init = true
		}, ClassStructure, true},
		{"duplicate state", func(s *Spec) {
			s.States = append(s.States, State{Name: "Ready"})
		}, ClassStructure, true},
		{"duplicate event", func(s *Spec) {
			s.Events = append(s.Events, Event{Name: "SEND"})
		}, ClassStructure, true},
		{"duplicate var", func(s *Spec) {
			s.Vars = append(s.Vars, Var{Name: "seq", Type: expr.TU16})
		}, ClassStructure, true},
		{"bad message", func(s *Spec) {
			s.Messages["Broken"] = &wire.Message{Name: "Broken"}
		}, ClassStructure, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := senderSpec()
			tt.mutate(s)
			report := Check(s)
			if report.OK() == tt.wantErr {
				t.Fatalf("Check OK=%v, wantErr=%v; issues: %v", report.OK(), tt.wantErr, report.Issues)
			}
			if len(report.ByClass(tt.class)) == 0 {
				t.Errorf("no issues of class %s; got %v", tt.class, report.Issues)
			}
		})
	}
}

func TestCheckWarningsOnly(t *testing.T) {
	t.Run("unreachable state", func(t *testing.T) {
		s := senderSpec()
		s.States = append(s.States, State{Name: "Limbo"})
		for _, ev := range s.Events {
			s.Ignores = append(s.Ignores, Ignore{State: "Limbo", Event: ev.Name})
		}
		report := Check(s)
		if !report.OK() {
			t.Fatalf("unexpected errors: %v", report.Errors())
		}
		if len(report.ByClass(ClassReachability)) == 0 {
			t.Error("expected a reachability warning for Limbo")
		}
	})
	t.Run("no final state", func(t *testing.T) {
		s := senderSpec()
		for i := range s.States {
			s.States[i].Final = false
		}
		// Sent now needs completeness coverage.
		for _, ev := range s.Events {
			s.Ignores = append(s.Ignores, Ignore{State: "Sent", Event: ev.Name})
		}
		report := Check(s)
		if !report.OK() {
			t.Fatalf("unexpected errors: %v", report.Errors())
		}
		if len(report.ByClass(ClassLiveness)) == 0 {
			t.Error("expected a liveness warning when no final state exists")
		}
	})
}

func TestCheckLivenessError(t *testing.T) {
	// A reachable trap state with no path to the final state must be a
	// liveness error (§3.4 guarantee 4: execution ends consistently).
	s := senderSpec()
	// Remove the retry escape from Timeout.
	var kept []Transition
	for _, tr := range s.Transitions {
		if tr.Name != "retry" {
			kept = append(kept, tr)
		}
	}
	s.Transitions = kept
	s.Ignores = append(s.Ignores, Ignore{State: "Timeout", Event: "RETRY"})
	report := Check(s)
	if report.OK() {
		t.Fatal("expected a liveness error for the Timeout trap state")
	}
	if len(report.ByClass(ClassLiveness)) == 0 {
		t.Errorf("no liveness issues: %v", report.Issues)
	}
}

func ackValue(seq uint64) expr.Value {
	return expr.Msg("Ack", map[string]expr.Value{
		"seq": expr.U8(seq), "chk": expr.U8(0),
	})
}

func TestMachineHappyPath(t *testing.T) {
	m, err := NewMachine(senderSpec())
	if err != nil {
		t.Fatal(err)
	}
	if m.State() != "Ready" {
		t.Fatalf("initial state = %s, want Ready", m.State())
	}

	res, err := m.Step("SEND", map[string]expr.Value{"data": expr.Bytes([]byte("hi"))})
	if err != nil {
		t.Fatal(err)
	}
	if res.To != "Wait" || res.Fired == nil || res.Fired.Name != "send" {
		t.Fatalf("SEND result = %+v", res)
	}
	if len(res.Outputs) != 1 || res.Outputs[0].Message != "Packet" {
		t.Fatalf("SEND outputs = %+v", res.Outputs)
	}
	if got := res.Outputs[0].Fields["seq"].AsUint(); got != 0 {
		t.Errorf("output seq = %d, want 0", got)
	}

	// A mismatched ack is rejected (guard fails) and the state is unchanged.
	res, err = m.Step("OK", map[string]expr.Value{"ack": ackValue(5)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected || m.State() != "Wait" {
		t.Fatalf("mismatched ack: %+v state=%s", res, m.State())
	}

	// The matching ack advances seq.
	res, err = m.Step("OK", map[string]expr.Value{"ack": ackValue(0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.To != "Ready" {
		t.Fatalf("OK result = %+v", res)
	}
	if seq, _ := m.Var("seq"); seq.AsUint() != 1 {
		t.Errorf("seq = %d, want 1", seq.AsUint())
	}

	if _, err := m.Step("FINISH", nil); err != nil {
		t.Fatal(err)
	}
	if !m.InFinal() {
		t.Error("machine should be in final state Sent")
	}
}

func TestMachineInvalidTransition(t *testing.T) {
	m, err := NewMachine(senderSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step("FINISH", nil); err != nil {
		t.Fatal(err) // Ready --FINISH--> Sent
	}
	// Sent is final: every event is now an invalid transition.
	if _, err := m.Step("SEND", map[string]expr.Value{"data": expr.Bytes(nil)}); !errors.Is(err, ErrInvalidTransition) {
		t.Errorf("Step in final state err = %v, want ErrInvalidTransition", err)
	}
}

func TestMachineEventValidation(t *testing.T) {
	m, err := NewMachine(senderSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step("NOSUCH", nil); !errors.Is(err, ErrUnknownEvent) {
		t.Errorf("unknown event err = %v", err)
	}
	if _, err := m.Step("SEND", nil); !errors.Is(err, ErrBadArg) {
		t.Errorf("missing arg err = %v", err)
	}
	if _, err := m.Step("SEND", map[string]expr.Value{"data": expr.U8(1)}); !errors.Is(err, ErrBadArg) {
		t.Errorf("wrong kind err = %v", err)
	}
	if _, err := m.Step("SEND", map[string]expr.Value{
		"data": expr.Bytes(nil), "extra": expr.U8(1),
	}); !errors.Is(err, ErrBadArg) {
		t.Errorf("extra arg err = %v", err)
	}
	if _, err := m.Step("OK", map[string]expr.Value{
		"ack": expr.Msg("Packet", nil), // wrong message type
	}); !errors.Is(err, ErrBadArg) {
		t.Errorf("wrong message type err = %v", err)
	}
}

func TestMachineIgnoredEvent(t *testing.T) {
	m, err := NewMachine(senderSpec())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Step("FAIL", nil) // ignored in Ready
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ignored || m.State() != "Ready" {
		t.Errorf("ignored event: %+v state=%s", res, m.State())
	}
}

func TestMachineSeqWrapsAt256(t *testing.T) {
	m, err := NewMachine(senderSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if _, err := m.Step("SEND", map[string]expr.Value{"data": expr.Bytes([]byte{1})}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Step("OK", map[string]expr.Value{"ack": ackValue(uint64(i % 256))}); err != nil {
			t.Fatal(err)
		}
	}
	if seq, _ := m.Var("seq"); seq.AsUint() != 0 {
		t.Errorf("seq after 256 rounds = %d, want 0 (8-bit wrap)", seq.AsUint())
	}
}

func TestMachineCloneAndReset(t *testing.T) {
	m, err := NewMachine(senderSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step("SEND", map[string]expr.Value{"data": expr.Bytes([]byte{1})}); err != nil {
		t.Fatal(err)
	}
	clone := m.Clone()
	if _, err := m.Step("OK", map[string]expr.Value{"ack": ackValue(0)}); err != nil {
		t.Fatal(err)
	}
	if clone.State() != "Wait" {
		t.Errorf("clone state changed to %s", clone.State())
	}
	if m.StateKey() == clone.StateKey() {
		t.Error("diverged machines share a state key")
	}
	m.Reset()
	if m.State() != "Ready" || m.Steps() != 0 {
		t.Errorf("Reset: state=%s steps=%d", m.State(), m.Steps())
	}
	if seq, _ := m.Var("seq"); seq.AsUint() != 0 {
		t.Errorf("Reset seq = %d", seq.AsUint())
	}
}

func TestNewMachineRefusesBrokenSpec(t *testing.T) {
	s := senderSpec()
	s.Transitions[0].To = "Nowhere"
	_, err := NewMachine(s)
	var cerr *CheckSpecError
	if !errors.As(err, &cerr) {
		t.Fatalf("NewMachine err = %v, want *CheckSpecError", err)
	}
	if cerr.Report == nil || cerr.Report.OK() {
		t.Error("CheckSpecError carries no failing report")
	}
}

func TestVarInitValues(t *testing.T) {
	s := senderSpec()
	s.Vars[0].Init = expr.U8(7)
	m, err := NewMachine(s)
	if err != nil {
		t.Fatal(err)
	}
	if seq, _ := m.Var("seq"); seq.AsUint() != 7 {
		t.Errorf("init seq = %d, want 7", seq.AsUint())
	}
}

func TestSimultaneousAssignment(t *testing.T) {
	// swap := a,b = b,a must read both pre-state values.
	s := &Spec{
		Name: "Swap",
		Vars: []Var{
			{Name: "a", Type: expr.TU8, Init: expr.U8(1)},
			{Name: "b", Type: expr.TU8, Init: expr.U8(2)},
		},
		States: []State{{Name: "S", Init: true}},
		Events: []Event{{Name: "SWAP"}},
		Transitions: []Transition{{
			From: "S", Event: "SWAP", To: "S",
			Assigns: []Assign{
				{Var: "a", Expr: expr.MustParse("b")},
				{Var: "b", Expr: expr.MustParse("a")},
			},
		}},
	}
	m, err := NewMachine(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step("SWAP", nil); err != nil {
		t.Fatal(err)
	}
	a, _ := m.Var("a")
	b, _ := m.Var("b")
	if a.AsUint() != 2 || b.AsUint() != 1 {
		t.Errorf("after swap a=%d b=%d, want 2,1", a.AsUint(), b.AsUint())
	}
}
