package expr

import "fmt"

// This file implements the compiled execution engine for the expression
// language. Compile lowers a (checked) expression AST into a tree of Go
// closures over a slot-indexed Frame, eliminating the per-eval costs of
// the tree-walking Eval path: no interface type switches, no
// map[string]Value scope lookups and no allocations on the success path.
// Compiled expressions have semantics identical to Eval — the same
// values, the same wrapping arithmetic and the same errors (division by
// zero, undefined variable) — which the differential tests in
// internal/dsl assert expression by expression.

// ScopeLayout assigns frame slot indices to variable names. A layout is
// built once per scope shape (e.g. a machine's variables plus an event's
// parameters) and shared by every expression compiled against it.
type ScopeLayout struct {
	slots  map[string]int
	shapes map[string]*MsgShape
	size   int
}

// NewScopeLayout returns an empty layout.
func NewScopeLayout() *ScopeLayout {
	return &ScopeLayout{slots: make(map[string]int)}
}

// Add binds name to the next free slot and returns its index. Adding a
// name twice returns the existing slot.
func (l *ScopeLayout) Add(name string) int {
	if s, ok := l.slots[name]; ok {
		return s
	}
	s := l.size
	l.slots[name] = s
	l.size++
	return s
}

// Bind maps name to an explicit slot, growing the frame if needed. It is
// used for shadowing: an event parameter that shares a machine variable's
// name is bound over it at a fresh slot in a cloned layout.
func (l *ScopeLayout) Bind(name string, slot int) {
	l.slots[name] = slot
	if slot >= l.size {
		l.size = slot + 1
	}
}

// Slot returns the slot bound to name.
func (l *ScopeLayout) Slot(name string) (int, bool) {
	s, ok := l.slots[name]
	return s, ok
}

// SetShape declares that the variable bound to name holds slot-backed
// messages of the given shape at runtime. Compiled field accesses on that
// variable then resolve the field slot at compile time and read it by
// integer index when the runtime value carries the same shape; values of
// any other representation fall back to the generic (observationally
// identical) path. The declaration is an optimisation hint only — it
// never changes semantics.
func (l *ScopeLayout) SetShape(name string, shape *MsgShape) {
	if l.shapes == nil {
		l.shapes = make(map[string]*MsgShape)
	}
	l.shapes[name] = shape
}

// ShapeOf returns the shape declared for name, if any.
func (l *ScopeLayout) ShapeOf(name string) *MsgShape { return l.shapes[name] }

// Size returns the number of slots a frame for this layout needs.
func (l *ScopeLayout) Size() int { return l.size }

// Clone returns an independent copy of the layout.
func (l *ScopeLayout) Clone() *ScopeLayout {
	cp := &ScopeLayout{slots: make(map[string]int, len(l.slots)), size: l.size}
	for k, v := range l.slots {
		cp.slots[k] = v
	}
	if l.shapes != nil {
		cp.shapes = make(map[string]*MsgShape, len(l.shapes))
		for k, v := range l.shapes {
			cp.shapes[k] = v
		}
	}
	return cp
}

// NewFrame allocates a frame sized for the layout.
func (l *ScopeLayout) NewFrame() *Frame {
	return &Frame{slots: make([]Value, l.size)}
}

// NewFrame allocates a frame with n slots (all unset).
func NewFrame(n int) *Frame {
	return &Frame{slots: make([]Value, n)}
}

// Frame holds the runtime values of a scope in layout order. Unset slots
// hold the invalid zero Value and read as undefined variables, matching
// Eval over a scope that lacks the name.
type Frame struct {
	slots []Value
}

// Set stores v in the given slot.
func (f *Frame) Set(slot int, v Value) { f.slots[slot] = v }

// Get returns the value in the given slot.
func (f *Frame) Get(slot int) Value { return f.slots[slot] }

// Len returns the frame's slot count.
func (f *Frame) Len() int { return len(f.slots) }

// Compiled is a compiled expression: call it with a frame laid out by the
// ScopeLayout it was compiled against.
type Compiled func(*Frame) (Value, error)

// Compile lowers the expression to a closure over layout-indexed frames.
// Compilation never fails: names absent from the layout (and unknown
// builtins) compile to closures that reproduce Eval's runtime errors, so
// compiled and tree-walking execution are observationally identical.
func Compile(e Expr, layout *ScopeLayout) Compiled {
	switch n := e.(type) {
	case *Lit:
		v := n.Val
		return func(*Frame) (Value, error) { return v, nil }
	case *Ident:
		slot, ok := layout.Slot(n.Name)
		if !ok {
			return errClosure(n.Offset, fmt.Errorf("undefined variable %q", n.Name))
		}
		name, off := n.Name, n.Offset
		return func(f *Frame) (Value, error) {
			v := f.slots[slot]
			if v.kind == KindInvalid {
				return Value{}, evalErrf(off, fmt.Errorf("undefined variable %q", name))
			}
			return v, nil
		}
	case *FieldAccess:
		// Peephole fusion: `ident.field` — the shape of every message
		// guard (`ack.seq == seq`) — loads the slot and the field in one
		// closure, with no inner closure call. When the layout declares a
		// message shape for the ident, the field slot is resolved here at
		// compile time and the runtime read is a pair of integer indexes —
		// no string is hashed on the hot path.
		if id, ok := n.X.(*Ident); ok {
			if slot, ok := layout.Slot(id.Name); ok {
				name, off := n.Name, n.Offset
				idName, idOff := id.Name, id.Offset
				if shape := layout.ShapeOf(id.Name); shape != nil {
					if fslot, ok := shape.Slot(name); ok {
						return func(f *Frame) (Value, error) {
							xv := f.slots[slot]
							if xv.shape == shape {
								if fv := xv.fr.slots[fslot]; fv.kind != KindInvalid {
									return fv, nil
								}
								return Value{}, evalErrf(off, fmt.Errorf("message %s has no field %q", xv.name, name))
							}
							return fieldAccessSlow(xv, name, idName, off, idOff)
						}
					}
				}
				return func(f *Frame) (Value, error) {
					return fieldAccessSlow(f.slots[slot], name, idName, off, idOff)
				}
			}
		}
		x := Compile(n.X, layout)
		name, off := n.Name, n.Offset
		return func(f *Frame) (Value, error) {
			xv, err := x(f)
			if err != nil {
				return Value{}, err
			}
			if xv.kind != KindMsg {
				return Value{}, evalErrf(off, fmt.Errorf("field access on %s value", xv.Kind()))
			}
			fv, ok := xv.fieldByName(name)
			if !ok {
				return Value{}, evalErrf(off, fmt.Errorf("message %s has no field %q", xv.name, name))
			}
			return fv, nil
		}
	case *Unary:
		return compileUnary(n, layout)
	case *Binary:
		return compileBinary(n, layout)
	case *Call:
		return compileCall(n, layout)
	default:
		return errClosure(e.Pos(), fmt.Errorf("unknown expression node %T", e))
	}
}

// CompileBool compiles an expression expected to produce a boolean,
// mirroring EvalBool.
func CompileBool(e Expr, layout *ScopeLayout) func(*Frame) (bool, error) {
	c := Compile(e, layout)
	pos := e.Pos()
	return func(f *Frame) (bool, error) {
		v, err := c(f)
		if err != nil {
			return false, err
		}
		if v.kind != KindBool {
			return false, evalErrf(pos, fmt.Errorf("expected bool result, got %s", v.Kind()))
		}
		return v.b, nil
	}
}

// fieldAccessSlow is the generic `ident.field` read shared by the fused
// field-access closures: it handles map-backed messages, frame-backed
// messages of a different shape than the compile-time declaration, and
// the error cases, reproducing Eval's behaviour exactly.
func fieldAccessSlow(xv Value, name, idName string, off, idOff int) (Value, error) {
	if xv.kind == KindMsg {
		if fv, ok := xv.fieldByName(name); ok {
			return fv, nil
		}
		return Value{}, evalErrf(off, fmt.Errorf("message %s has no field %q", xv.name, name))
	}
	if xv.kind == KindInvalid {
		return Value{}, evalErrf(idOff, fmt.Errorf("undefined variable %q", idName))
	}
	return Value{}, evalErrf(off, fmt.Errorf("field access on %s value", xv.Kind()))
}

func errClosure(pos int, err error) Compiled {
	wrapped := evalErrf(pos, err)
	return func(*Frame) (Value, error) { return Value{}, wrapped }
}

func compileUnary(n *Unary, layout *ScopeLayout) Compiled {
	x := Compile(n.X, layout)
	off := n.Offset
	switch n.Op {
	case OpNot:
		return func(f *Frame) (Value, error) {
			xv, err := x(f)
			if err != nil {
				return Value{}, err
			}
			if xv.kind != KindBool {
				return Value{}, evalErrf(off, fmt.Errorf("! requires bool, got %s", xv.Kind()))
			}
			return Value{kind: KindBool, b: !xv.b}, nil
		}
	case OpNeg:
		return func(f *Frame) (Value, error) {
			xv, err := x(f)
			if err != nil {
				return Value{}, err
			}
			if xv.kind != KindUint {
				return Value{}, evalErrf(off, fmt.Errorf("- requires uint, got %s", xv.Kind()))
			}
			return Uint(-xv.u, xv.bits), nil
		}
	default:
		op := n.Op
		return errClosure(off, fmt.Errorf("invalid unary op %s", op))
	}
}

func compileBinary(n *Binary, layout *ScopeLayout) Compiled {
	// Whole-expression fusions for the two shapes that dominate protocol
	// hot paths — `msg.field ==/!= var` (sequence-number guards) and
	// `var op literal` (counter updates). Both compile to a single
	// closure with no inner closure calls.
	if c := fuseFieldVarCompare(n, layout); c != nil {
		return c
	}
	if c := fuseVarLitArith(n, layout); c != nil {
		return c
	}

	// Short-circuit logical operators mirror evalBinary's use of EvalBool:
	// the operand's own position is the error offset.
	if n.Op == OpAnd || n.Op == OpOr {
		x := CompileBool(n.X, layout)
		y := CompileBool(n.Y, layout)
		if n.Op == OpAnd {
			return func(f *Frame) (Value, error) {
				xb, err := x(f)
				if err != nil {
					return Value{}, err
				}
				if !xb {
					return Value{kind: KindBool, b: false}, nil
				}
				yb, err := y(f)
				if err != nil {
					return Value{}, err
				}
				return Value{kind: KindBool, b: yb}, nil
			}
		}
		return func(f *Frame) (Value, error) {
			xb, err := x(f)
			if err != nil {
				return Value{}, err
			}
			if xb {
				return Value{kind: KindBool, b: true}, nil
			}
			yb, err := y(f)
			if err != nil {
				return Value{}, err
			}
			return Value{kind: KindBool, b: yb}, nil
		}
	}

	x := Compile(n.X, layout)
	y := Compile(n.Y, layout)
	off := n.Offset

	switch n.Op {
	case OpEq:
		return func(f *Frame) (Value, error) {
			xv, err := x(f)
			if err != nil {
				return Value{}, err
			}
			yv, err := y(f)
			if err != nil {
				return Value{}, err
			}
			return Value{kind: KindBool, b: equalValues(xv, yv)}, nil
		}
	case OpNe:
		return func(f *Frame) (Value, error) {
			xv, err := x(f)
			if err != nil {
				return Value{}, err
			}
			yv, err := y(f)
			if err != nil {
				return Value{}, err
			}
			return Value{kind: KindBool, b: !equalValues(xv, yv)}, nil
		}
	}

	op := n.Op
	return func(f *Frame) (Value, error) {
		xv, err := x(f)
		if err != nil {
			return Value{}, err
		}
		yv, err := y(f)
		if err != nil {
			return Value{}, err
		}
		if xv.kind != KindUint || yv.kind != KindUint {
			return Value{}, evalErrf(off, fmt.Errorf("operator %s requires uints, got %s and %s", op, xv.Kind(), yv.Kind()))
		}
		a, b := xv.u, yv.u
		bits := xv.bits
		if yv.bits > bits {
			bits = yv.bits
		}
		switch op {
		case OpLt:
			return Value{kind: KindBool, b: a < b}, nil
		case OpLe:
			return Value{kind: KindBool, b: a <= b}, nil
		case OpGt:
			return Value{kind: KindBool, b: a > b}, nil
		case OpGe:
			return Value{kind: KindBool, b: a >= b}, nil
		case OpAdd:
			return Value{kind: KindUint, u: truncate(a+b, bits), bits: bits}, nil
		case OpSub:
			return Value{kind: KindUint, u: truncate(a-b, bits), bits: bits}, nil
		case OpMul:
			return Value{kind: KindUint, u: truncate(a*b, bits), bits: bits}, nil
		case OpDiv:
			if b == 0 {
				return Value{}, evalErrf(off, ErrDivisionByZero)
			}
			return Value{kind: KindUint, u: truncate(a/b, bits), bits: bits}, nil
		case OpMod:
			if b == 0 {
				return Value{}, evalErrf(off, ErrDivisionByZero)
			}
			return Value{kind: KindUint, u: truncate(a%b, bits), bits: bits}, nil
		case OpBitAnd:
			return Value{kind: KindUint, u: a & b, bits: bits}, nil
		case OpBitOr:
			return Value{kind: KindUint, u: a | b, bits: bits}, nil
		case OpBitXor:
			return Value{kind: KindUint, u: a ^ b, bits: bits}, nil
		case OpShl:
			if b >= 64 {
				return Value{kind: KindUint, u: 0, bits: xv.bits}, nil
			}
			return Value{kind: KindUint, u: truncate(a<<b, xv.bits), bits: xv.bits}, nil
		case OpShr:
			if b >= 64 {
				return Value{kind: KindUint, u: 0, bits: xv.bits}, nil
			}
			return Value{kind: KindUint, u: a >> b, bits: xv.bits}, nil
		default:
			return Value{}, evalErrf(off, fmt.Errorf("invalid binary op %s", op))
		}
	}
}

// fuseFieldVarCompare fuses `ident.field ==/!= ident` (e.g. the ARQ
// guards `ack.seq == seq`, `p.seq != seq`) into one closure. Returns nil
// when the expression has a different shape. Error cases reproduce the
// generic path exactly: X's errors first, then Y's.
func fuseFieldVarCompare(n *Binary, layout *ScopeLayout) Compiled {
	if n.Op != OpEq && n.Op != OpNe {
		return nil
	}
	fa, ok := n.X.(*FieldAccess)
	if !ok {
		return nil
	}
	faID, ok := fa.X.(*Ident)
	if !ok {
		return nil
	}
	yID, ok := n.Y.(*Ident)
	if !ok {
		return nil
	}
	xSlot, okX := layout.Slot(faID.Name)
	ySlot, okY := layout.Slot(yID.Name)
	if !okX || !okY {
		return nil
	}
	field, faOff := fa.Name, fa.Offset
	xName, xOff := faID.Name, faID.Offset
	yName, yOff := yID.Name, yID.Offset
	negate := n.Op == OpNe
	slow := func(f *Frame) (Value, error) {
		xv := f.slots[xSlot]
		if xv.kind != KindMsg {
			if xv.kind == KindInvalid {
				return Value{}, evalErrf(xOff, fmt.Errorf("undefined variable %q", xName))
			}
			return Value{}, evalErrf(faOff, fmt.Errorf("field access on %s value", xv.Kind()))
		}
		fv, ok := xv.fieldByName(field)
		if !ok {
			return Value{}, evalErrf(faOff, fmt.Errorf("message %s has no field %q", xv.name, field))
		}
		yv := f.slots[ySlot]
		if yv.kind == KindInvalid {
			return Value{}, evalErrf(yOff, fmt.Errorf("undefined variable %q", yName))
		}
		var eq bool
		if fv.kind == KindUint && yv.kind == KindUint {
			eq = fv.u == yv.u
		} else {
			eq = fv.Equal(yv)
		}
		return Value{kind: KindBool, b: eq != negate}, nil
	}
	// Shape fast path: when the layout declares the message shape of the
	// accessed ident, the entire guard is three integer-indexed loads and
	// one compare at runtime.
	if shape := layout.ShapeOf(faID.Name); shape != nil {
		if fslot, ok := shape.Slot(field); ok {
			return func(f *Frame) (Value, error) {
				xv := f.slots[xSlot]
				if xv.shape == shape {
					fv := xv.fr.slots[fslot]
					yv := f.slots[ySlot]
					if fv.kind == KindUint && yv.kind == KindUint {
						return Value{kind: KindBool, b: (fv.u == yv.u) != negate}, nil
					}
				}
				return slow(f)
			}
		}
	}
	return slow
}

// fuseVarLitArith fuses `ident op uint-literal` (e.g. the ARQ action
// `seq + 1`) into one closure. Returns nil when the shape or operator
// does not apply.
func fuseVarLitArith(n *Binary, layout *ScopeLayout) Compiled {
	switch n.Op {
	case OpAdd, OpSub, OpMul, OpBitAnd, OpBitOr, OpBitXor,
		OpLt, OpLe, OpGt, OpGe:
	default:
		return nil // div/mod/shifts keep the generic path (zero/width edge cases)
	}
	id, ok := n.X.(*Ident)
	if !ok {
		return nil
	}
	lit, ok := n.Y.(*Lit)
	if !ok || lit.Val.kind != KindUint {
		return nil
	}
	slot, ok := layout.Slot(id.Name)
	if !ok {
		return nil
	}
	b, litBits := lit.Val.u, lit.Val.bits
	name, idOff, off, op := id.Name, id.Offset, n.Offset, n.Op
	return func(f *Frame) (Value, error) {
		xv := f.slots[slot]
		if xv.kind != KindUint {
			if xv.kind == KindInvalid {
				return Value{}, evalErrf(idOff, fmt.Errorf("undefined variable %q", name))
			}
			return Value{}, evalErrf(off, fmt.Errorf("operator %s requires uints, got %s and %s", op, xv.Kind(), KindUint))
		}
		a := xv.u
		bits := xv.bits
		if litBits > bits {
			bits = litBits
		}
		switch op {
		case OpAdd:
			return Value{kind: KindUint, u: truncate(a+b, bits), bits: bits}, nil
		case OpSub:
			return Value{kind: KindUint, u: truncate(a-b, bits), bits: bits}, nil
		case OpMul:
			return Value{kind: KindUint, u: truncate(a*b, bits), bits: bits}, nil
		case OpBitAnd:
			return Value{kind: KindUint, u: a & b, bits: bits}, nil
		case OpBitOr:
			return Value{kind: KindUint, u: a | b, bits: bits}, nil
		case OpBitXor:
			return Value{kind: KindUint, u: a ^ b, bits: bits}, nil
		case OpLt:
			return Value{kind: KindBool, b: a < b}, nil
		case OpLe:
			return Value{kind: KindBool, b: a <= b}, nil
		case OpGt:
			return Value{kind: KindBool, b: a > b}, nil
		default: // OpGe
			return Value{kind: KindBool, b: a >= b}, nil
		}
	}
}

func compileCall(n *Call, layout *ScopeLayout) Compiled {
	b, ok := LookupBuiltin(n.Func)
	if !ok {
		return errClosure(n.Offset, fmt.Errorf("unknown function %q", n.Func))
	}
	args := make([]Compiled, len(n.Args))
	for i, a := range n.Args {
		args[i] = Compile(a, layout)
	}
	eval := b.Eval
	off := n.Offset
	return func(f *Frame) (Value, error) {
		vals := make([]Value, len(args))
		for i, a := range args {
			v, err := a(f)
			if err != nil {
				return Value{}, err
			}
			vals[i] = v
		}
		v, err := eval(vals)
		if err != nil {
			return Value{}, evalErrf(off, err)
		}
		return v, nil
	}
}
