package fsm

import (
	"fmt"

	"protodsl/internal/expr"
	"protodsl/internal/wire"
)

// Severity classifies check findings.
type Severity int

// Severities.
const (
	SevError Severity = iota + 1
	SevWarning
)

// String returns "error" or "warning".
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Issue classes, mirroring the properties §3.3 of the paper asks for.
const (
	ClassStructure    = "structure"    // malformed spec
	ClassSoundness    = "soundness"    // transition references / typing
	ClassCompleteness = "completeness" // unhandled (state, event) pairs
	ClassDeterminism  = "determinism"  // ambiguous transition choice
	ClassReachability = "reachability" // states unreachable from init
	ClassLiveness     = "liveness"     // no path to a consistent end state
)

// Issue is a single finding of the static checker.
type Issue struct {
	Severity   Severity
	Class      string
	State      string
	Event      string
	Transition string
	Msg        string
}

// String renders the issue.
func (i Issue) String() string {
	loc := ""
	if i.State != "" {
		loc += " state=" + i.State
	}
	if i.Event != "" {
		loc += " event=" + i.Event
	}
	if i.Transition != "" {
		loc += " transition=" + i.Transition
	}
	return fmt.Sprintf("%s[%s]%s: %s", i.Severity, i.Class, loc, i.Msg)
}

// Report is the result of statically checking a Spec.
type Report struct {
	Spec   string
	Issues []Issue
}

// OK reports whether the spec has no errors (warnings allowed).
func (r *Report) OK() bool {
	for _, i := range r.Issues {
		if i.Severity == SevError {
			return false
		}
	}
	return true
}

// Errors returns only the error-severity issues.
func (r *Report) Errors() []Issue {
	var out []Issue
	for _, i := range r.Issues {
		if i.Severity == SevError {
			out = append(out, i)
		}
	}
	return out
}

// Warnings returns only the warning-severity issues.
func (r *Report) Warnings() []Issue {
	var out []Issue
	for _, i := range r.Issues {
		if i.Severity == SevWarning {
			out = append(out, i)
		}
	}
	return out
}

// ByClass returns the issues of the given class.
func (r *Report) ByClass(class string) []Issue {
	var out []Issue
	for _, i := range r.Issues {
		if i.Class == class {
			out = append(out, i)
		}
	}
	return out
}

// CheckSpecError is returned when a spec with check errors is used where a
// checked spec is required (NewMachine, codegen).
type CheckSpecError struct {
	Report *Report
}

// Error implements error.
func (e *CheckSpecError) Error() string {
	errs := e.Report.Errors()
	return fmt.Sprintf("spec %s has %d check error(s); first: %s",
		e.Report.Spec, len(errs), errs[0].String())
}

// Check statically verifies the spec. It never mutates the spec. The
// returned report contains every finding; a spec is usable for execution
// and code generation iff Report.OK().
func Check(s *Spec) *Report {
	c := &checker{spec: s, report: &Report{Spec: s.Name}}
	c.structure()
	if len(c.report.Errors()) > 0 {
		// Structural breakage makes the deeper checks meaningless.
		return c.report
	}
	c.soundness()
	c.completeness()
	c.determinism()
	c.reachability()
	c.liveness()
	return c.report
}

type checker struct {
	spec   *Spec
	report *Report
}

func (c *checker) add(sev Severity, class, state, event, trans, format string, args ...any) {
	c.report.Issues = append(c.report.Issues, Issue{
		Severity: sev, Class: class, State: state, Event: event, Transition: trans,
		Msg: fmt.Sprintf(format, args...),
	})
}

func (c *checker) errf(class, state, event, trans, format string, args ...any) {
	c.add(SevError, class, state, event, trans, format, args...)
}

func (c *checker) warnf(class, state, event, trans, format string, args ...any) {
	c.add(SevWarning, class, state, event, trans, format, args...)
}

func (c *checker) structure() {
	s := c.spec
	if s.Name == "" {
		c.errf(ClassStructure, "", "", "", "machine must have a name")
	}
	if len(s.States) == 0 {
		c.errf(ClassStructure, "", "", "", "machine must declare at least one state")
		return
	}
	inits := 0
	seenStates := make(map[string]bool, len(s.States))
	for _, st := range s.States {
		if st.Name == "" {
			c.errf(ClassStructure, "", "", "", "state with empty name")
			continue
		}
		if seenStates[st.Name] {
			c.errf(ClassStructure, st.Name, "", "", "duplicate state name")
		}
		seenStates[st.Name] = true
		if st.Init {
			inits++
		}
	}
	if inits != 1 {
		c.errf(ClassStructure, "", "", "", "machine must declare exactly one initial state, got %d", inits)
	}
	seenEvents := make(map[string]bool, len(s.Events))
	for _, ev := range s.Events {
		if ev.Name == "" {
			c.errf(ClassStructure, "", "", "", "event with empty name")
			continue
		}
		if seenEvents[ev.Name] {
			c.errf(ClassStructure, "", ev.Name, "", "duplicate event name")
		}
		seenEvents[ev.Name] = true
		seenParams := make(map[string]bool, len(ev.Params))
		for _, p := range ev.Params {
			if seenParams[p.Name] {
				c.errf(ClassStructure, "", ev.Name, "", "duplicate parameter %q", p.Name)
			}
			seenParams[p.Name] = true
			if p.Type.Kind == expr.KindMsg {
				if _, ok := s.Messages[p.Type.MsgName]; !ok {
					c.errf(ClassStructure, "", ev.Name, "", "parameter %q references unknown message %q",
						p.Name, p.Type.MsgName)
				}
			}
		}
	}
	seenVars := make(map[string]bool, len(s.Vars))
	for _, v := range s.Vars {
		if v.Name == "" {
			c.errf(ClassStructure, "", "", "", "variable with empty name")
			continue
		}
		if seenVars[v.Name] {
			c.errf(ClassStructure, "", "", "", "duplicate variable %q", v.Name)
		}
		seenVars[v.Name] = true
		if v.Init.IsValid() && !v.Type.AssignableFrom(typeOfValue(v.Init)) {
			c.errf(ClassStructure, "", "", "", "variable %q: init value kind %s does not match type %s",
				v.Name, v.Init.Kind(), v.Type)
		}
	}
	// Every referenced message must itself compile.
	for name, m := range s.Messages {
		if _, err := wire.Compile(m); err != nil {
			c.errf(ClassStructure, "", "", "", "message %q: %v", name, err)
		}
	}
}

func (c *checker) soundness() {
	s := c.spec
	for i := range s.Transitions {
		t := &s.Transitions[i]
		label := transLabel(t, i)
		from, okFrom := s.StateByName(t.From)
		if !okFrom {
			c.errf(ClassSoundness, t.From, t.Event, label, "transition from undeclared state %q", t.From)
		}
		if _, ok := s.StateByName(t.To); !ok {
			c.errf(ClassSoundness, t.To, t.Event, label, "transition to undeclared state %q", t.To)
		}
		ev, okEv := s.EventByName(t.Event)
		if !okEv {
			c.errf(ClassSoundness, t.From, t.Event, label, "transition on undeclared event %q", t.Event)
		}
		if okFrom && from.Final {
			c.errf(ClassSoundness, t.From, t.Event, label,
				"final state %q must not have outgoing transitions", t.From)
		}
		if !okFrom || !okEv {
			continue
		}
		env := s.env(ev)
		if t.Guard != nil {
			if err := expr.CheckBool(t.Guard, env); err != nil {
				c.errf(ClassSoundness, t.From, t.Event, label, "guard: %v", err)
			}
		}
		for _, a := range t.Assigns {
			v, ok := s.VarByName(a.Var)
			if !ok {
				c.errf(ClassSoundness, t.From, t.Event, label, "assignment to undeclared variable %q", a.Var)
				continue
			}
			at, err := expr.Check(a.Expr, env)
			if err != nil {
				c.errf(ClassSoundness, t.From, t.Event, label, "assignment to %q: %v", a.Var, err)
				continue
			}
			if !v.Type.AssignableFrom(at) {
				c.errf(ClassSoundness, t.From, t.Event, label,
					"assignment to %q: type %s not assignable to %s", a.Var, at, v.Type)
			}
		}
		for _, o := range t.Outputs {
			c.checkOutput(t, label, env, o)
		}
	}
	// Ignore declarations must reference real states/events and must not
	// overlap declared transitions (that would be ambiguous).
	for _, ig := range s.Ignores {
		if _, ok := s.StateByName(ig.State); !ok {
			c.errf(ClassSoundness, ig.State, ig.Event, "", "ignore in undeclared state %q", ig.State)
			continue
		}
		if _, ok := s.EventByName(ig.Event); !ok {
			c.errf(ClassSoundness, ig.State, ig.Event, "", "ignore of undeclared event %q", ig.Event)
			continue
		}
		if len(s.TransitionsFrom(ig.State, ig.Event)) > 0 {
			c.errf(ClassSoundness, ig.State, ig.Event, "",
				"event is both ignored and handled by a transition")
		}
	}
}

func (c *checker) checkOutput(t *Transition, label string, env expr.Env, o Output) {
	s := c.spec
	m, ok := s.Messages[o.Message]
	if !ok {
		c.errf(ClassSoundness, t.From, t.Event, label, "output of unknown message %q", o.Message)
		return
	}
	for i := range m.Fields {
		f := &m.Fields[i]
		e, supplied := o.Fields[f.Name]
		if f.Compute != nil {
			if supplied {
				c.errf(ClassSoundness, t.From, t.Event, label,
					"output %s: field %q is computed and must not be supplied", o.Message, f.Name)
			}
			continue
		}
		// Length fields used via LenField are auto-filled by the encoder.
		if !supplied {
			if isAutoLength(m, f.Name) {
				continue
			}
			c.errf(ClassSoundness, t.From, t.Event, label,
				"output %s: missing field %q", o.Message, f.Name)
			continue
		}
		et, err := expr.Check(e, env)
		if err != nil {
			c.errf(ClassSoundness, t.From, t.Event, label, "output %s field %q: %v", o.Message, f.Name, err)
			continue
		}
		if !f.Type().AssignableFrom(et) {
			c.errf(ClassSoundness, t.From, t.Event, label,
				"output %s field %q: type %s not assignable to %s", o.Message, f.Name, et, f.Type())
		}
	}
	for name := range o.Fields {
		if _, ok := m.Field(name); !ok {
			c.errf(ClassSoundness, t.From, t.Event, label,
				"output %s: unknown field %q", o.Message, name)
		}
	}
}

// isAutoLength reports whether the named field is the LenField length of
// some bytes field, in which case the encoder fills it automatically and
// outputs need not (and should not have to) supply it.
func isAutoLength(m *wire.Message, fieldName string) bool {
	for i := range m.Fields {
		f := &m.Fields[i]
		if f.Kind == wire.FieldBytes && f.LenKind == wire.LenField && f.LenField == fieldName {
			return true
		}
	}
	return false
}

func (c *checker) completeness() {
	s := c.spec
	for _, st := range s.States {
		if st.Final {
			continue
		}
		for _, ev := range s.Events {
			ts := s.TransitionsFrom(st.Name, ev.Name)
			if len(ts) == 0 {
				if !s.Ignored(st.Name, ev.Name) {
					c.errf(ClassCompleteness, st.Name, ev.Name, "",
						"event %q is not handled (and not declared ignored) in state %q", ev.Name, st.Name)
				}
				continue
			}
			allGuarded := true
			for _, t := range ts {
				if t.Guard == nil {
					allGuarded = false
					break
				}
			}
			if allGuarded {
				c.warnf(ClassCompleteness, st.Name, ev.Name, "",
					"all %d transition(s) are guarded; the event is rejected when no guard holds — add an unguarded fallback or an explicit ignore to silence", len(ts))
			}
		}
	}
}

func (c *checker) determinism() {
	s := c.spec
	type key struct{ state, event string }
	groups := make(map[key][]*Transition)
	order := make(map[key][]int)
	for i := range s.Transitions {
		t := &s.Transitions[i]
		k := key{t.From, t.Event}
		groups[k] = append(groups[k], t)
		order[k] = append(order[k], i)
	}
	for k, ts := range groups {
		unguarded := 0
		firstUnguarded := -1
		seenGuards := make(map[string]bool)
		for idx, t := range ts {
			if t.Guard == nil {
				unguarded++
				if firstUnguarded == -1 {
					firstUnguarded = idx
				}
				continue
			}
			g := t.Guard.String()
			if seenGuards[g] {
				c.errf(ClassDeterminism, k.state, k.event, transLabel(t, order[k][idx]),
					"duplicate guard %q: second transition can never fire", g)
			}
			seenGuards[g] = true
		}
		if unguarded > 1 {
			c.errf(ClassDeterminism, k.state, k.event, "",
				"%d unguarded transitions on the same (state, event): choice is ambiguous", unguarded)
		}
		if unguarded == 1 && firstUnguarded < len(ts)-1 {
			c.warnf(ClassDeterminism, k.state, k.event, "",
				"unguarded transition precedes guarded ones: the guards after it can never fire")
		}
	}
}

func (c *checker) reachability() {
	s := c.spec
	init := s.InitState()
	if init == "" {
		return
	}
	reachable := reachableStates(s, init)
	for _, st := range s.States {
		if !reachable[st.Name] {
			c.warnf(ClassReachability, st.Name, "", "",
				"state %q is unreachable from the initial state %q", st.Name, init)
		}
	}
}

func (c *checker) liveness() {
	s := c.spec
	var finals []string
	for _, st := range s.States {
		if st.Final {
			finals = append(finals, st.Name)
		}
	}
	if len(finals) == 0 {
		c.warnf(ClassLiveness, "", "", "",
			"no final state declared: consistent termination (§3.4 guarantee 4) cannot be checked")
		return
	}
	// Reverse reachability: which states can reach some final state?
	rev := make(map[string][]string)
	for i := range s.Transitions {
		t := &s.Transitions[i]
		rev[t.To] = append(rev[t.To], t.From)
	}
	canFinish := make(map[string]bool, len(s.States))
	queue := append([]string(nil), finals...)
	for _, f := range finals {
		canFinish[f] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, prev := range rev[cur] {
			if !canFinish[prev] {
				canFinish[prev] = true
				queue = append(queue, prev)
			}
		}
	}
	init := s.InitState()
	reachable := reachableStates(s, init)
	for _, st := range s.States {
		if reachable[st.Name] && !canFinish[st.Name] {
			c.errf(ClassLiveness, st.Name, "", "",
				"no path from state %q to any final state: execution could never end consistently", st.Name)
		}
	}
}

func reachableStates(s *Spec, init string) map[string]bool {
	reachable := map[string]bool{init: true}
	queue := []string{init}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for i := range s.Transitions {
			t := &s.Transitions[i]
			if t.From == cur && !reachable[t.To] {
				reachable[t.To] = true
				queue = append(queue, t.To)
			}
		}
	}
	return reachable
}

func transLabel(t *Transition, idx int) string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("#%d(%s--%s->%s)", idx, t.From, t.Event, t.To)
}

func typeOfValue(v expr.Value) expr.Type {
	switch v.Kind() {
	case expr.KindBool:
		return expr.TBool
	case expr.KindUint:
		return expr.TUint(v.Bits())
	case expr.KindBytes:
		return expr.TBytes
	case expr.KindString:
		return expr.TString
	case expr.KindMsg:
		return expr.TMsg(v.MsgName())
	default:
		return expr.Type{}
	}
}
