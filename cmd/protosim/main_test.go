package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestStopAndWaitRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-payloads", "10", "-size", "32", "-loss", "0.2", "-seed", "3",
		"-rto", "15ms", "-retries", "40",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"stop-and-wait transfer", "ok: true", "delivered: 10/10"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestGoBackNRun(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-payloads", "20", "-window", "8", "-delay", "10ms", "-loss", "0.05",
		"-rto", "80ms", "-retries", "40",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "go-back-N transfer (window 8)") || !strings.Contains(s, "delivered: 20/20") {
		t.Errorf("output:\n%s", s)
	}
}

func TestBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-window", "not-a-number"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
