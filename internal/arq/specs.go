package arq

import (
	"protodsl/internal/expr"
	"protodsl/internal/fsm"
	"protodsl/internal/wire"
)

// Sender/receiver event and state names, exported so callers and tests
// speak the spec's vocabulary.
const (
	// Sender states (the paper's SendSt).
	StReady   = "Ready"
	StWait    = "Wait"
	StTimeout = "Timeout"
	StSent    = "Sent"

	// Receiver states.
	StReadyFor = "ReadyFor"
	StClosed   = "Closed"

	// Sender events (the paper's SendTrans constructors).
	EvSend    = "SEND"
	EvOK      = "OK"
	EvFail    = "FAIL"
	EvTimeout = "TIMEOUT"
	EvRetry   = "RETRY"
	EvFinish  = "FINISH"

	// Receiver events.
	EvRecv  = "RECV"
	EvClose = "CLOSE"
)

func messages() map[string]*wire.Message {
	return map[string]*wire.Message{
		"Packet": PacketMessage(),
		"Ack":    AckMessage(),
	}
}

// SenderSpec returns the paper's ARQ sender machine:
//
//	data SendTrans : SendSt → SendSt → ⋆ where
//	  SEND    : ListByte → SendTrans (Ready seq) (Wait seq)
//	  OK      : ChkPacket … → SendTrans (Wait seq) (Ready (seq+1))
//	  FAIL    : SendTrans (Wait seq) (Ready seq)
//	  TIMEOUT : SendTrans (Wait seq) (Timeout seq)
//	  FINISH  : SendTrans (Ready seq) (Sent seq)
//
// plus RETRY : Timeout → Ready, the host-policy escape that makes the
// machine "ready to try again" after a timeout (§3.4).
//
// The OK transition's ChkPacket argument is modelled by the guard
// `ack.seq == seq` over a *validated* Ack: the interpreter only ever sees
// acks that passed DecodeAck, so the dependent-type precondition
// "verified packet" is established before the event is raised.
func SenderSpec() *fsm.Spec {
	return &fsm.Spec{
		Name: "ArqSender",
		Doc:  "Stop-and-wait ARQ sender (paper §3.4).",
		Vars: []fsm.Var{{Name: "seq", Type: expr.TU8}},
		States: []fsm.State{
			{Name: StReady, Init: true, Doc: "ready to send the next packet"},
			{Name: StWait, Doc: "a packet is in flight, awaiting its ack"},
			{Name: StTimeout, Doc: "the in-flight packet timed out"},
			{Name: StSent, Final: true, Doc: "all data sent and acknowledged"},
		},
		Events: []fsm.Event{
			{Name: EvSend, Params: []fsm.Param{{Name: "data", Type: expr.TBytes}}},
			{Name: EvOK, Params: []fsm.Param{{Name: "ack", Type: expr.TMsg("Ack")}}},
			{Name: EvFail},
			{Name: EvTimeout},
			{Name: EvRetry},
			{Name: EvFinish},
		},
		Transitions: []fsm.Transition{
			{Name: "send", From: StReady, Event: EvSend, To: StWait,
				Outputs: []fsm.Output{{Message: "Packet", Fields: map[string]expr.Expr{
					"seq":     expr.MustParse("seq"),
					"payload": expr.MustParse("data"),
				}}}},
			{Name: "ack", From: StWait, Event: EvOK, To: StReady,
				Guard:   expr.MustParse("ack.seq == seq"),
				Assigns: []fsm.Assign{{Var: "seq", Expr: expr.MustParse("seq + 1")}}},
			{Name: "fail", From: StWait, Event: EvFail, To: StReady},
			{Name: "timeout", From: StWait, Event: EvTimeout, To: StTimeout},
			{Name: "retry", From: StTimeout, Event: EvRetry, To: StReady},
			{Name: "finish", From: StReady, Event: EvFinish, To: StSent},
		},
		Ignores: []fsm.Ignore{
			// Stale acks and late timers arriving in Ready are no-ops.
			{State: StReady, Event: EvOK, Doc: "stale ack after advance"},
			{State: StReady, Event: EvFail, Doc: "late failure signal"},
			{State: StReady, Event: EvTimeout, Doc: "late timer"},
			{State: StReady, Event: EvRetry, Doc: "late retry"},
			{State: StWait, Event: EvSend, Doc: "window is 1: cannot send while waiting"},
			{State: StWait, Event: EvRetry, Doc: "not timed out"},
			{State: StWait, Event: EvFinish, Doc: "cannot finish with data in flight"},
			{State: StTimeout, Event: EvSend},
			{State: StTimeout, Event: EvOK, Doc: "ack after timeout: host decides via RETRY"},
			{State: StTimeout, Event: EvFail},
			{State: StTimeout, Event: EvTimeout},
			{State: StTimeout, Event: EvFinish},
		},
		Messages: messages(),
	}
}

// ReceiverSpec returns the paper's receiver:
//
//	RECV : (seq : Byte) → (data : ListByte) →
//	       CheckPacket … → RecvTrans (ReadyFor seq) (ReadyFor (seq+1))
//
// extended with the duplicate-ack reply for retransmitted packets (the
// paper's receiver "will reject a packet"; re-acknowledging the rejected
// duplicate is what lets the sender make progress when acks are lost) and
// a CLOSE event to a final state so consistent termination is checkable.
func ReceiverSpec() *fsm.Spec {
	return &fsm.Spec{
		Name: "ArqReceiver",
		Doc:  "Stop-and-wait ARQ receiver (paper §3.4).",
		Vars: []fsm.Var{{Name: "seq", Type: expr.TU8}},
		States: []fsm.State{
			{Name: StReadyFor, Init: true, Doc: "waiting for packet `seq`"},
			{Name: StClosed, Final: true},
		},
		Events: []fsm.Event{
			{Name: EvRecv, Params: []fsm.Param{{Name: "p", Type: expr.TMsg("Packet")}}},
			{Name: EvClose},
		},
		Transitions: []fsm.Transition{
			{Name: "accept", From: StReadyFor, Event: EvRecv, To: StReadyFor,
				Guard:   expr.MustParse("p.seq == seq"),
				Assigns: []fsm.Assign{{Var: "seq", Expr: expr.MustParse("seq + 1")}},
				Outputs: []fsm.Output{{Message: "Ack", Fields: map[string]expr.Expr{
					"seq": expr.MustParse("p.seq"),
				}}}},
			{Name: "dupack", From: StReadyFor, Event: EvRecv, To: StReadyFor,
				Guard: expr.MustParse("p.seq != seq"),
				Outputs: []fsm.Output{{Message: "Ack", Fields: map[string]expr.Expr{
					"seq": expr.MustParse("p.seq"),
				}}}},
			{Name: "close", From: StReadyFor, Event: EvClose, To: StClosed},
		},
		Messages: messages(),
	}
}
