package dsl

// IPv4Source is the canonical .pdsl definition of the RFC 791 IPv4
// header — the paper's Figure 1 expressed in the surface DSL rather than
// through the Go API (internal/ipv4 builds the same message
// programmatically; tests assert byte-for-byte agreement, including via
// generated code). It exercises every bit-level feature of the wire
// layer: sub-byte fields, a field crossing no byte boundary cleanly
// (fragment_offset: 13 bits), an Internet-checksum field and an
// expression-computed options length.
const IPv4Source = `// RFC 791 Internet Datagram Header (paper Figure 1).
protocol ipv4 {
    message IPv4Header {
        version: u4
        ihl: u4
        tos: u8
        total_length: u16
        identification: u16
        flags: u3
        fragment_offset: u13
        ttl: u8
        protocol: u8
        header_checksum: u16 = checksum inet16
        source: u32
        destination: u32
        options: bytes[(ihl - 5) * 4]
    }
}
`
