package dsl

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary source at the DSL front end. The contract
// under fuzz is total: Parse either returns a protocol or an error,
// never a panic — and any source the parser accepts must also survive
// the full Compile pipeline (lowering, FSM verification, codec
// compilation) without panicking. Compile may still reject semantically
// (that is its job); it must do so with an error.
//
// Seed corpus: testdata/fuzz/FuzzParse (the canonical sources plus
// truncations and hostile edits).
func FuzzParse(f *testing.F) {
	f.Add(ARQSource)
	f.Add(IPv4Source)
	f.Add("")
	f.Add("protocol P {}")
	f.Add("message M { field x: u8 }")
	// Truncations of the canonical source shake unterminated-construct
	// handling at every nesting depth.
	for _, frac := range []int{4, 2} {
		f.Add(ARQSource[:len(ARQSource)/frac])
	}
	f.Add(strings.Replace(ARQSource, "u8", "u999", 1))
	f.Add(strings.Replace(ARQSource, "{", "", 1))

	f.Fuzz(func(t *testing.T, src string) {
		// Pathological inputs (deep nesting, megabyte identifiers) are
		// legitimate parser food, but unbounded source just times the
		// fuzzer out without finding anything a smaller input wouldn't.
		if len(src) > 1<<16 {
			t.Skip()
		}
		p, err := Parse(src)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("Parse returned nil protocol and nil error")
		}
		if _, _, err := Compile(src); err != nil {
			// Accepted by the parser, rejected by semantics: fine, as
			// long as it is an error and not a panic.
			return
		}
	})
}
