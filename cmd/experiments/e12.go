package main

import (
	"fmt"
	"io"
	"time"

	"protodsl/internal/faults"
	"protodsl/internal/harness"
	"protodsl/internal/metrics"
	"protodsl/internal/netsim"
)

// runE12 quantifies the adaptive-RTO claim of DESIGN.md §13: under
// Gilbert-Elliott bursty loss — the misbehaviour uniform i.i.d. loss
// cannot model — an RFC 6298 estimator beats any honest fixed RTO on
// goodput, because a fixed timeout must be provisioned for the unknown
// worst-case RTT (here 50ms against a ~4ms path) and then pays that
// full overestimate on every burst, while the estimator converges to
// the measured RTT and recovers from each burst in milliseconds. On a
// clean channel the two are nearly identical: adaptation costs nothing
// when there is nothing to adapt to.
func runE12(_ *ctx, out io.Writer) error {
	const shards = 4
	// The chaos channel: bursts arrive every ~20 packets and eat ~90% of
	// a mean 5-packet run — long enough to defeat a window in one bite.
	sch := &faults.Schedule{
		Seed:    12,
		Gilbert: &faults.GilbertElliott{PGoodBad: 0.05, PBadGood: 0.2, LossBad: 0.9},
	}
	base := harness.MultiFlowConfig{
		Flows:           8,
		PayloadsPerFlow: 40,
		PayloadSize:     128,
		Window:          8,
		RTO:             50 * time.Millisecond, // the honest guess for an unknown path
		MaxRTO:          200 * time.Millisecond,
		MaxRetries:      300,
		Bottleneck:      netsim.LinkParams{Delay: 2 * time.Millisecond},
		Seed:            12,
	}
	tb := metrics.NewTable(
		fmt.Sprintf("E12: adaptive vs fixed RTO under Gilbert-Elliott bursty loss (%d shards x %d flows)",
			shards, base.Flows),
		"variant", "rto", "channel", "ok", "goodput/flow B/s", "retrans", "mean dur")
	for _, variant := range []harness.Variant{harness.VariantGBN, harness.VariantSR} {
		for _, chaos := range []bool{false, true} {
			for _, adaptive := range []bool{false, true} {
				cfg := base
				cfg.Variant = variant
				cfg.Adaptive = adaptive
				channel := "clean"
				if chaos {
					cfg.Faults = sch
					channel = "bursty"
				}
				mode := "fixed 50ms"
				if adaptive {
					mode = "adaptive"
				}
				rep, err := harness.Run(cfg, shards, 0)
				if err != nil {
					return err
				}
				tb.AddRow(variant.String(), mode, channel,
					fmt.Sprintf("%d/%d", rep.OKFlows, rep.Flows),
					rep.Goodput.Mean(),
					rep.Retransmits,
					fmt.Sprintf("%.1fms", rep.Duration.Mean()*1000))
			}
		}
	}
	fmt.Fprintln(out, tb)
	fmt.Fprintln(out, "Reading: on the clean channel adaptive and fixed finish together (no")
	fmt.Fprintln(out, "timeouts fire, so the estimator is pure bookkeeping). Under bursty loss")
	fmt.Fprintln(out, "the fixed sender sits out its full 50ms overestimate after every burst,")
	fmt.Fprintln(out, "while the estimator has converged to the ~4ms path RTT and retries as")
	fmt.Fprintln(out, "soon as the burst plausibly ended — several times the goodput from the")
	fmt.Fprintln(out, "same wire. Karn's rule keeps retransmission ambiguity out of the")
	fmt.Fprintln(out, "estimate; exponential backoff still bounds the pressure either sender")
	fmt.Fprintln(out, "puts on a dead path. See DESIGN.md §13.")
	return nil
}
