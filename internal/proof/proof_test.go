package proof

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

type packet struct {
	Seq     uint8
	Chk     uint8
	Payload []byte
}

func sum8(seq uint8, payload []byte) uint8 {
	s := uint64(seq)
	for _, b := range payload {
		s += uint64(b)
	}
	return uint8(s)
}

func packetValidator() *Validator[packet] {
	return NewValidator[packet]("packet",
		Check[packet]{Name: "checksum", Fn: func(p packet) error {
			if sum8(p.Seq, p.Payload) != p.Chk {
				return fmt.Errorf("checksum %d != computed %d", p.Chk, sum8(p.Seq, p.Payload))
			}
			return nil
		}},
		Check[packet]{Name: "payload-size", Fn: func(p packet) error {
			if len(p.Payload) > 1024 {
				return fmt.Errorf("payload too large: %d", len(p.Payload))
			}
			return nil
		}},
	)
}

func TestValidateIssuesWitness(t *testing.T) {
	v := packetValidator()
	p := packet{Seq: 1, Payload: []byte{10, 20}}
	p.Chk = sum8(p.Seq, p.Payload)
	checked, err := v.Validate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !checked.Valid() {
		t.Error("issued witness reports invalid")
	}
	if got := checked.Value(); got.Seq != 1 {
		t.Errorf("Value().Seq = %d", got.Seq)
	}
	cert := checked.Certificate()
	if cert.Validator() != "packet" {
		t.Errorf("certificate validator = %q", cert.Validator())
	}
	for _, c := range []string{"checksum", "payload-size"} {
		if !cert.Establishes(c) {
			t.Errorf("certificate does not establish %q", c)
		}
	}
	if cert.Establishes("nonexistent") {
		t.Error("certificate establishes a check it never ran")
	}
	if len(cert.Established()) != 2 {
		t.Errorf("Established() = %v", cert.Established())
	}
}

func TestValidateRejects(t *testing.T) {
	v := packetValidator()
	p := packet{Seq: 1, Chk: 99, Payload: []byte{10}}
	checked, err := v.Validate(p)
	if err == nil {
		t.Fatal("Validate accepted a corrupt packet")
	}
	if checked.Valid() {
		t.Error("rejected value produced a valid witness")
	}
	if !errors.Is(err, ErrCheckFailed) {
		t.Errorf("err = %v, want ErrCheckFailed class", err)
	}
	var cerr *CheckError
	if !errors.As(err, &cerr) {
		t.Fatalf("err type = %T", err)
	}
	if cerr.Check != "checksum" {
		t.Errorf("failing check = %q, want checksum", cerr.Check)
	}
}

func TestChecksRunInOrderAndStopAtFirstFailure(t *testing.T) {
	var ran []string
	v := NewValidator[int]("ordered",
		Check[int]{Name: "a", Fn: func(int) error { ran = append(ran, "a"); return nil }},
		Check[int]{Name: "b", Fn: func(int) error { ran = append(ran, "b"); return errors.New("no") }},
		Check[int]{Name: "c", Fn: func(int) error { ran = append(ran, "c"); return nil }},
	)
	if _, err := v.Validate(0); err == nil {
		t.Fatal("want failure")
	}
	if len(ran) != 2 || ran[0] != "a" || ran[1] != "b" {
		t.Errorf("ran = %v, want [a b]", ran)
	}
}

func TestZeroCheckedIsInvalid(t *testing.T) {
	var c Checked[packet]
	if c.Valid() {
		t.Error("zero Checked reports valid")
	}
	if c.Certificate().Validator() != "" {
		t.Error("zero Checked has a certificate")
	}
}

// Property: a witness exists iff validation passes — i.e. possession of a
// valid Checked[packet] implies the checksum relation holds (the paper's
// "existence of a value of type ChkPacket p implies that p is valid").
func TestQuickWitnessSoundness(t *testing.T) {
	v := packetValidator()
	f := func(seq, chk uint8, payload []byte) bool {
		if len(payload) > 1024 {
			payload = payload[:1024]
		}
		p := packet{Seq: seq, Chk: chk, Payload: payload}
		checked, err := v.Validate(p)
		valid := sum8(seq, payload) == chk
		if valid {
			return err == nil && checked.Valid()
		}
		return err != nil && !checked.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCertificateStringAndCopy(t *testing.T) {
	v := packetValidator()
	p := packet{Seq: 0, Payload: nil}
	p.Chk = sum8(p.Seq, p.Payload)
	checked, err := v.Validate(p)
	if err != nil {
		t.Fatal(err)
	}
	cert := checked.Certificate()
	if cert.String() == "" {
		t.Error("empty certificate string")
	}
	// Mutating the returned slice must not affect the certificate.
	est := cert.Established()
	est[0] = "tampered"
	if cert.Establishes("tampered") {
		t.Error("certificate internals exposed by Established()")
	}
}
