//go:generate go run protodsl/cmd/pdslc gen -emit go -pkg gen -builtin-arq -o arq_gen.go

package gen
