package trust

import (
	"testing"
)

func TestAllHonestDelivers(t *testing.T) {
	res, err := Run(Config{
		Relays: 4, AdversarialFraction: 0, Strategy: StrategyRandom,
		Messages: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate != 1.0 {
		t.Errorf("all-honest success rate = %.3f, want 1.0", res.SuccessRate)
	}
	if res.Delivered != 100 || res.Attempts != 100 {
		t.Errorf("delivered=%d attempts=%d", res.Delivered, res.Attempts)
	}
}

func TestTrustBeatsRandomUnderAdversaries(t *testing.T) {
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		var trustRate, randomRate float64
		for seed := int64(0); seed < 3; seed++ {
			tr, err := Run(Config{
				Relays: 8, AdversarialFraction: frac, Strategy: StrategyTrust,
				Messages: 400, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			rr, err := Run(Config{
				Relays: 8, AdversarialFraction: frac, Strategy: StrategyRandom,
				Messages: 400, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			trustRate += tr.SuccessRate
			randomRate += rr.SuccessRate
		}
		trustRate /= 3
		randomRate /= 3
		if trustRate <= randomRate {
			t.Errorf("frac=%.2f: trust %.3f did not beat random %.3f", frac, trustRate, randomRate)
		}
	}
}

func TestLateSuccessShowsLearning(t *testing.T) {
	res, err := Run(Config{
		Relays: 8, AdversarialFraction: 0.5, Strategy: StrategyTrust,
		Messages: 400, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After learning, the exploit phase should be near-perfect apart from
	// ε-exploration of bad relays.
	if res.LateSuccessRate < 0.8 {
		t.Errorf("late success rate = %.3f, want >= 0.8 after convergence", res.LateSuccessRate)
	}
	if res.LateSuccessRate < res.SuccessRate {
		t.Errorf("late rate %.3f below overall %.3f: no learning visible",
			res.LateSuccessRate, res.SuccessRate)
	}
}

func TestTrustScoresSeparateBehaviours(t *testing.T) {
	res, err := Run(Config{
		Relays: 6, AdversarialFraction: 0.5, Strategy: StrategyTrust,
		Messages: 300, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var honestBest, badBest float64
	for _, r := range res.Relays {
		if r.Behaviour == Honest {
			if r.Score > honestBest {
				honestBest = r.Score
			}
		} else if r.Score > badBest {
			badBest = r.Score
		}
	}
	if honestBest <= badBest {
		t.Errorf("best honest score %.3f not above best adversarial %.3f", honestBest, badBest)
	}
	// Behaviour assignment sanity: 3 adversarial of 6.
	bad := 0
	for _, r := range res.Relays {
		if r.Behaviour != Honest {
			bad++
		}
	}
	if bad != 3 {
		t.Errorf("adversarial relays = %d, want 3", bad)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{
		Relays: 8, AdversarialFraction: 0.5, Strategy: StrategyTrust,
		Messages: 200, Seed: 42,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.SuccessRate != b.SuccessRate {
		t.Error("same seed, different results")
	}
	for i := range a.Relays {
		if a.Relays[i] != b.Relays[i] {
			t.Errorf("relay %d stats differ", i)
		}
	}
}

func TestCorruptorsAreDetected(t *testing.T) {
	// With only corruptors, failures must come from checksum rejection at
	// the destination (no ack), not silent acceptance of garbage.
	res, err := Run(Config{
		Relays: 2, AdversarialFraction: 1.0, MisbehaveProb: 1.0,
		Strategy: StrategyRandom, Messages: 50, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// relay0 = dropper, relay1 = corruptor, both at p=1.0: nothing can be
	// delivered — and critically nothing corrupt is ever acked.
	if res.Delivered != 0 {
		t.Errorf("delivered %d corrupt/dropped messages", res.Delivered)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Relays: -1}); err == nil {
		t.Error("negative relays accepted")
	}
}

func TestStringers(t *testing.T) {
	if Honest.String() != "honest" || Dropper.String() != "dropper" || Corruptor.String() != "corruptor" {
		t.Error("behaviour names wrong")
	}
	if StrategyRandom.String() != "random" || StrategyTrust.String() != "trust" {
		t.Error("strategy names wrong")
	}
	if Behaviour(99).String() != "unknown" || Strategy(99).String() != "unknown" {
		t.Error("unknown names wrong")
	}
}
