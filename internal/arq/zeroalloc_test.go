package arq

import (
	"testing"

	"protodsl/internal/expr"
	"protodsl/internal/fsm"
)

// TestCodecZeroAllocs pins the live codec path's allocation contract:
// steady-state packet/ack encode and in-place decode through the slot
// programs allocate nothing.
func TestCodecZeroAllocs(t *testing.T) {
	c, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256)
	enc, err := c.AppendEncodePacket(nil, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	pkt := append([]byte(nil), enc...)
	ackEnc, err := c.AppendEncodeAck(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	ack := append([]byte(nil), ackEnc...)

	buf := enc[:0]
	if n := testing.AllocsPerRun(200, func() {
		out, err := c.AppendEncodePacket(buf[:0], 3, payload)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	}); n != 0 {
		t.Fatalf("AppendEncodePacket allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := c.DecodePacketInPlace(pkt); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecodePacketInPlace allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := c.DecodeAckInPlace(ack); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("DecodeAckInPlace allocates %.1f/op", n)
	}
}

// TestMachinePacketLoopZeroAllocs drives the full per-packet machine
// path — ack decode into the codec frame, FrameMsg wrap, StepEv with the
// `ack.seq == seq` guard, output frame encode — and asserts zero
// allocations, i.e. the rewritten endpoints' steady-state loop.
func TestMachinePacketLoopZeroAllocs(t *testing.T) {
	machine, err := fsm.NewMachine(SenderSpec())
	if err != nil {
		t.Fatal(err)
	}
	codec, err := NewCodec()
	if err != nil {
		t.Fatal(err)
	}
	ackShape := machine.Program().MsgShape("Ack")
	evSend, _ := machine.EventID(EvSend)
	evOK, _ := machine.EventID(EvOK)
	payload := make([]byte, 64)
	var encBuf, ackBuf []byte
	seq := uint8(0)

	// Warm the buffers once.
	a, err := codec.AppendEncodeAck(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ackBuf = append([]byte(nil), a...)

	if n := testing.AllocsPerRun(200, func() {
		res, err := machine.StepEv(evSend, expr.BytesView(payload))
		if err != nil {
			t.Fatal(err)
		}
		enc, err := codec.PacketProgram().AppendEncode(encBuf[:0], res.Outputs[0].Frame)
		if err != nil {
			t.Fatal(err)
		}
		encBuf = enc[:0]
		// The peer acks the in-flight seq; decode it and step OK.
		a, err := codec.AppendEncodeAck(ackBuf[:0], seq)
		if err != nil {
			t.Fatal(err)
		}
		ackBuf = a[:0]
		frame, err := codec.DecodeAckFrame(a)
		if err != nil {
			t.Fatal(err)
		}
		okRes, err := machine.StepEv(evOK, expr.FrameMsg(ackShape, frame))
		if err != nil {
			t.Fatal(err)
		}
		if okRes.Fired == nil {
			t.Fatal("ack did not fire")
		}
		seq++
	}); n != 0 {
		t.Fatalf("send/ack machine loop allocates %.1f/op", n)
	}
}
