package netsim

import (
	"fmt"
	"time"

	"protodsl/internal/obs"
)

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds.
const (
	TraceSend TraceKind = iota + 1
	TraceDeliver
	TraceDrop
	TraceDup
	TraceCorrupt
)

// String returns the kind name.
func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	case TraceDup:
		return "dup"
	case TraceCorrupt:
		return "corrupt"
	default:
		return "unknown"
	}
}

// TraceEvent is one entry of the simulation trace.
type TraceEvent struct {
	At   time.Duration
	Kind TraceKind
	From Addr
	To   Addr
	Size int
}

// String renders the event.
func (e TraceEvent) String() string {
	return fmt.Sprintf("%12s %-8s %s -> %s (%d bytes)", e.At, e.Kind, e.From, e.To, e.Size)
}

// traceEvent records one event into the trace ring. TraceKind and
// obs.Kind share values by construction, so the conversion is a cast;
// the addresses are interned to ids (a map hit in steady state — no
// allocation, no string copies, unlike the []TraceEvent slice this
// replaced). With tracing off this is one atomic load.
func (s *Sim) traceEvent(kind TraceKind, from, to Addr, size int) {
	if !s.obs.TraceOn() {
		return
	}
	s.obsSh.Ring().Record(s.now, obs.Kind(kind), 0, size, s.intern(from), s.intern(to))
}

// Stats aggregates simulator-level packet counters. Dropped counts the
// link's own impairments (loss roll, MTU); FaultDropped counts drops
// injected by a LinkParams.Faults schedule — split so experiments can
// attribute loss to the chaos plan versus the link model.
type Stats struct {
	Sent         uint64
	Delivered    uint64
	Dropped      uint64
	FaultDropped uint64
	Duplicated   uint64
	Corrupted    uint64
	Reordered    uint64
}

// String renders the counters.
func (st Stats) String() string {
	return fmt.Sprintf("sent=%d delivered=%d dropped=%d fault=%d dup=%d corrupt=%d reorder=%d",
		st.Sent, st.Delivered, st.Dropped, st.FaultDropped, st.Duplicated, st.Corrupted, st.Reordered)
}
