package codegen

import (
	"fmt"
	"sort"
	"strings"

	"protodsl/internal/expr"
	"protodsl/internal/fsm"
)

// machine emits both generated forms of one state machine:
//
//   - the typed witness API: one struct type per state, a transition
//     method existing only on its legal source state (undeclared
//     transitions are Go compile errors), Checked message parameters;
//   - the flat machine: dense state/event indices, per-event dispatch
//     tables from the compiled fsm.Program's rows, value-staged outputs
//     — one table load and an indirect call per delivery, no maps, no
//     interfaces, no allocations.
func (g *generator) machine(prog *fsm.Program) error {
	spec := prog.Spec()
	mName := goName(spec.Name)

	g.p("// %sVars holds machine %s's variables; every state carries them.", mName, spec.Name)
	g.p("type %sVars struct {", mName)
	for _, v := range spec.Vars {
		g.p("\t%s %s", goName(v.Name), goValueType(v.Type))
	}
	g.p("}")
	g.p("")

	for _, st := range spec.States {
		sName := mName + goName(st.Name)
		role := ""
		switch {
		case st.Init:
			role = " (initial)"
		case st.Final:
			role = " (final: no transitions leave it)"
		}
		if st.Doc != "" {
			g.p("// %s is state %q%s: %s", sName, st.Name, role, st.Doc)
		} else {
			g.p("// %s is machine %s in state %q%s.", sName, spec.Name, st.Name, role)
		}
		g.p("type %s struct {", sName)
		g.p("\tVars %sVars", mName)
		g.p("}")
		g.p("")
		g.p("// StateName identifies the state (it satisfies fsmtyped.State).")
		g.p("func (%s) StateName() string { return %q }", sName, st.Name)
		g.p("")
	}

	init := spec.InitState()
	g.p("// New%s returns the machine in its initial state %q.", mName, init)
	g.p("func New%s() %s%s {", mName, mName, goName(init))
	g.p("\treturn %s%s{Vars: %s}", mName, goName(init), initVarsLiteral(spec, mName))
	g.p("}")
	g.p("")

	// Guard against duplicate method names per source state.
	seen := make(map[string]bool)
	for i := range spec.Transitions {
		t := &spec.Transitions[i]
		if t.Name == "" {
			return fmt.Errorf("codegen: machine %s: transition #%d (%s--%s->%s) needs a name",
				spec.Name, i, t.From, t.Event, t.To)
		}
		key := t.From + "." + goName(t.Name)
		if seen[key] {
			return fmt.Errorf("codegen: machine %s: duplicate transition name %q on state %s",
				spec.Name, t.Name, t.From)
		}
		seen[key] = true
		if err := g.transition(spec, mName, t); err != nil {
			return err
		}
	}

	return g.flatMachine(prog)
}

// initVarsLiteral renders the machine's initial variable values as a
// composite literal.
func initVarsLiteral(spec *fsm.Spec, mName string) string {
	var parts []string
	for _, v := range spec.Vars {
		if v.Init.IsValid() {
			lit, err := goValueLiteral(v.Init)
			if err != nil {
				continue // non-literal inits refused by transition checks
			}
			parts = append(parts, goName(v.Name)+": "+lit)
		}
	}
	return mName + "Vars{" + strings.Join(parts, ", ") + "}"
}

func (g *generator) transition(spec *fsm.Spec, mName string, t *fsm.Transition) error {
	ev, _ := spec.EventByName(t.Event)
	fromT := mName + goName(t.From)
	toT := mName + goName(t.To)
	method := goName(t.Name)
	if len(t.Outputs) > 1 {
		return fmt.Errorf("codegen: machine %s transition %s: at most one output supported, got %d",
			spec.Name, t.Name, len(t.Outputs))
	}

	// Bind machine vars and event params for expression translation.
	tr := &goTranslator{messages: g.proto.Messages, vars: make(map[string]varBinding)}
	for _, v := range spec.Vars {
		tr.vars[v.Name] = varBinding{code: "s.Vars." + goName(v.Name), typ: v.Type}
	}
	var params []string
	var witnessChecks []string
	for _, p := range ev.Params {
		tr.vars[p.Name] = varBinding{code: p.Name, typ: p.Type, checkedMsg: p.Type.Kind == expr.KindMsg}
		params = append(params, p.Name+" "+goParamType(p.Type))
		if p.Type.Kind == expr.KindMsg {
			witnessChecks = append(witnessChecks, p.Name)
		}
	}

	returns := "(" + toT + ", error)"
	zeroReturn := toT + "{}"
	outName := ""
	if len(t.Outputs) == 1 {
		outName = goName(t.Outputs[0].Message)
		returns = "(" + toT + ", " + outName + ", error)"
		zeroReturn = toT + "{}, " + outName + "{}"
	}

	g.p("// %s implements transition %q: %s --%s--> %s.", method, t.Name, t.From, t.Event, t.To)
	if t.Guard != nil {
		g.p("// It returns genrt.ErrGuardFailed — and the caller keeps its current")
		g.p("// state value — when the guard `%s` does not hold.", t.Guard.String())
	}
	g.p("func (s %s) %s(%s) %s {", fromT, method, strings.Join(params, ", "), returns)
	for _, w := range witnessChecks {
		g.p("\tif !%s.Valid() {", w)
		g.p("\t\treturn %s, genrt.ErrUnverified", zeroReturn)
		g.p("\t}")
	}
	if t.Guard != nil {
		code, _, err := tr.translate(t.Guard)
		if err != nil {
			return fmt.Errorf("codegen: machine %s transition %s guard: %w", spec.Name, t.Name, err)
		}
		g.p("\tif !(%s) {", code)
		g.p("\t\treturn %s, genrt.ErrGuardFailed", zeroReturn)
		g.p("\t}")
	}
	// Simultaneous assignment: RHS reads s.Vars (pre-state) only.
	g.p("\tvars := s.Vars")
	for _, a := range t.Assigns {
		code, at, err := tr.translate(a.Expr)
		if err != nil {
			return fmt.Errorf("codegen: machine %s transition %s assign %s: %w", spec.Name, t.Name, a.Var, err)
		}
		v, _ := spec.VarByName(a.Var)
		g.p("\tvars.%s = %s", goName(a.Var), castTo(code, at, v.Type))
	}
	if len(t.Outputs) == 1 {
		lit, err := g.outputLiteral(spec, tr, t, &t.Outputs[0])
		if err != nil {
			return err
		}
		g.p("\tout := %s", lit)
		g.p("\treturn %s{Vars: vars}, out, nil", toT)
	} else {
		g.p("\treturn %s{Vars: vars}, nil", toT)
	}
	g.p("}")
	g.p("")
	return nil
}

// outputLiteral renders an output message as a composite literal with
// its declared fields in sorted order (undeclared fields stay zero).
func (g *generator) outputLiteral(spec *fsm.Spec, tr *goTranslator, t *fsm.Transition, out *fsm.Output) (string, error) {
	msg := g.proto.Messages[out.Message]
	names := make([]string, 0, len(out.Fields))
	for n := range out.Fields {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, fname := range names {
		f, _ := msg.Field(fname)
		code, ft, err := tr.translate(out.Fields[fname])
		if err != nil {
			return "", fmt.Errorf("codegen: machine %s transition %s output field %s: %w",
				spec.Name, t.Name, fname, err)
		}
		parts = append(parts, goName(fname)+": "+castTo(code, ft, f.Type()))
	}
	return goName(out.Message) + "{" + strings.Join(parts, ", ") + "}", nil
}

// flatMachine emits the dense-dispatch form of the machine from the
// compiled program's state×event rows.
func (g *generator) flatMachine(prog *fsm.Program) error {
	spec := prog.Spec()
	mName := goName(spec.Name)
	lname := lowerFirst(mName)
	nStates, nEvents := prog.NumStates(), prog.NumEvents()

	reserved := map[string]bool{"Reset": true, "StateName": true, "StateIndex": true, "InFinal": true, "Vars": true}
	for e := 0; e < nEvents; e++ {
		if name := goName(prog.EventAt(e).Name); reserved[name] {
			return fmt.Errorf("codegen: machine %s: event name %q collides with a flat-machine method",
				spec.Name, prog.EventAt(e).Name)
		}
	}

	g.p("// Dense state and event indices for the flat %sMachine dispatch", mName)
	g.p("// tables, in spec declaration order (see DESIGN.md §11).")
	g.p("const (")
	for s := 0; s < nStates; s++ {
		g.p("\t%sSt%s = %d", mName, goName(prog.StateName(s)), s)
	}
	g.p("\t%sNumStates = %d", mName, nStates)
	g.p(")")
	g.p("")
	g.p("const (")
	for e := 0; e < nEvents; e++ {
		g.p("\t%sEv%s = %d", mName, goName(prog.EventAt(e).Name), e)
	}
	g.p("\t%sNumEvents = %d", mName, nEvents)
	g.p(")")
	g.p("")

	g.p("var %sStateNames = [%sNumStates]string{", lname, mName)
	for s := 0; s < nStates; s++ {
		g.p("\t%q,", prog.StateName(s))
	}
	g.p("}")
	g.p("")
	g.p("var %sFinals = [%sNumStates]bool{", lname, mName)
	for s := 0; s < nStates; s++ {
		g.p("\t%t,", prog.FinalState(s))
	}
	g.p("}")
	g.p("")

	// Program-wide transition indices: a fired delivery returns one of
	// these as its StepOutcome.
	trConst := make([]string, len(spec.Transitions))
	if len(spec.Transitions) > 0 {
		g.p("// %sTransitionNames maps a fired StepOutcome index to the", mName)
		g.p("// transition's spec name.")
		g.p("var %sTransitionNames = [...]string{", mName)
		for i := range spec.Transitions {
			g.p("\t%q,", spec.Transitions[i].Name)
		}
		g.p("}")
		g.p("")
		used := make(map[string]bool)
		g.p("const (")
		for i := range spec.Transitions {
			name := mName + "Tr" + goName(spec.Transitions[i].Name)
			if used[name] {
				name = fmt.Sprintf("%s%d", name, i)
			}
			used[name] = true
			trConst[i] = name
			g.p("\t%s genrt.StepOutcome = %d", name, i)
		}
		g.p(")")
		g.p("")
	}

	// Output staging fields: one value per distinct output message.
	outMsgs := flatOutputMessages(spec)

	g.p("// %sMachine executes machine %s as flat table dispatch: state and", mName, spec.Name)
	g.p("// event are dense indices, delivering an event is one table load and")
	g.p("// an indirect call, and outputs are staged in value fields — no maps,")
	g.p("// no interface values, no allocations on any path. It is the raw")
	g.p("// dispatch core; the typed state API above carries the compile-time")
	g.p("// transition proofs.")
	g.p("type %sMachine struct {", mName)
	g.p("\tstate int32")
	g.p("\t// Vars are the machine variables (write only via transitions).")
	g.p("\tVars %sVars", mName)
	for _, om := range outMsgs {
		g.p("\t// Out%s is staged by the last fired transition that emits a", goName(om))
		g.p("\t// %s; it is valid until the next delivery.", goName(om))
		g.p("\tOut%s %s", goName(om), goName(om))
	}
	g.p("}")
	g.p("")

	g.p("// New%sMachine returns the flat machine in its initial state %q.", mName, spec.InitState())
	g.p("func New%sMachine() %sMachine {", mName, mName)
	g.p("\treturn %sMachine{state: %sSt%s, Vars: %s}", mName, mName, goName(spec.InitState()), initVarsLiteral(spec, mName))
	g.p("}")
	g.p("")
	g.p("// Reset returns the machine to its initial state and variable values.")
	g.p("func (m *%sMachine) Reset() { *m = New%sMachine() }", mName, mName)
	g.p("")
	g.p("// StateIndex returns the dense index of the current state.")
	g.p("func (m *%sMachine) StateIndex() int { return int(m.state) }", mName)
	g.p("")
	g.p("// StateName identifies the state (it satisfies fsmtyped.State).")
	g.p("func (m *%sMachine) StateName() string { return %sStateNames[m.state] }", mName, lname)
	g.p("")
	g.p("// InFinal reports whether the machine is in an accepting state.")
	g.p("func (m *%sMachine) InFinal() bool { return %sFinals[m.state] }", mName, lname)
	g.p("")

	for e := 0; e < nEvents; e++ {
		if err := g.flatEvent(prog, mName, lname, e, trConst); err != nil {
			return err
		}
	}
	return nil
}

// flatOutputMessages returns the distinct output message names across
// all transitions, in first-appearance order.
func flatOutputMessages(spec *fsm.Spec) []string {
	var out []string
	seen := make(map[string]bool)
	for i := range spec.Transitions {
		for _, o := range spec.Transitions[i].Outputs {
			if !seen[o.Message] {
				seen[o.Message] = true
				out = append(out, o.Message)
			}
		}
	}
	return out
}

// flatEvent emits one event's dispatch table, row functions and entry
// method.
func (g *generator) flatEvent(prog *fsm.Program, mName, lname string, e int, trConst []string) error {
	spec := prog.Spec()
	ev := prog.EventAt(e)
	evName := goName(ev.Name)

	recv := "m"
	for _, p := range ev.Params {
		if p.Name == "m" {
			recv = "mm"
		}
	}
	var sigParams, callParams, tabParams []string
	for _, p := range ev.Params {
		sigParams = append(sigParams, p.Name+" "+flatParamType(p.Type))
		callParams = append(callParams, p.Name)
		tabParams = append(tabParams, flatParamType(p.Type))
	}
	fnType := fmt.Sprintf("func(*%sMachine%s) (genrt.StepOutcome, error)", mName,
		strings.Join(append([]string{""}, tabParams...), ", "))
	if len(tabParams) == 0 {
		fnType = fmt.Sprintf("func(*%sMachine) (genrt.StepOutcome, error)", mName)
	}

	// Classify each state's row.
	type rowKind int
	const (
		rowNone rowKind = iota
		rowIgnore
		rowFire
	)
	kinds := make([]rowKind, prog.NumStates())
	anyIgnore := false
	for s := 0; s < prog.NumStates(); s++ {
		row := prog.RowIR(s, e)
		switch {
		case len(row.Transitions) > 0:
			kinds[s] = rowFire
		case row.Ignored:
			kinds[s] = rowIgnore
			anyIgnore = true
		}
	}

	// Row functions first, then the shared ignore row, then the table.
	for s := 0; s < prog.NumStates(); s++ {
		if kinds[s] != rowFire {
			continue
		}
		if err := g.flatRow(prog, mName, lname, s, e, recv, sigParams, trConst); err != nil {
			return err
		}
	}
	if anyIgnore {
		g.p("func %s%sIgnore(%s *%sMachine%s) (genrt.StepOutcome, error) {", lname, evName, recv, mName,
			prefixJoin(sigParams))
		g.p("\treturn genrt.StepIgnored, nil")
		g.p("}")
		g.p("")
	}

	g.p("var %s%sTab = [%sNumStates]%s{", lname, evName, mName, fnType)
	for s := 0; s < prog.NumStates(); s++ {
		switch kinds[s] {
		case rowFire:
			g.p("\t%sSt%s: %s%sFrom%s,", mName, goName(prog.StateName(s)), lname, evName, goName(prog.StateName(s)))
		case rowIgnore:
			g.p("\t%sSt%s: %s%sIgnore,", mName, goName(prog.StateName(s)), lname, evName)
		}
	}
	g.p("}")
	g.p("")

	g.p("// %s delivers event %q. The outcome is the fired transition's", evName, ev.Name)
	g.p("// program-wide index (%sTr*), genrt.StepIgnored, or genrt.StepRejected", mName)
	g.p("// when every declared guard fails; genrt.ErrNoTransition reports an")
	g.p("// event the current state neither handles nor ignores.")
	g.p("func (%s *%sMachine) %s(%s) (genrt.StepOutcome, error) {", recv, mName, evName, strings.Join(sigParams, ", "))
	call := strings.Join(append([]string{recv}, callParams...), ", ")
	g.p("\tif fn := %s%sTab[%s.state]; fn != nil {", lname, evName, recv)
	g.p("\t\treturn fn(%s)", call)
	g.p("\t}")
	g.p("\treturn genrt.StepNone, genrt.ErrNoTransition")
	g.p("}")
	g.p("")
	_ = spec
	return nil
}

func prefixJoin(params []string) string {
	if len(params) == 0 {
		return ""
	}
	return ", " + strings.Join(params, ", ")
}

// flatRow emits the row function for (state, event): guards tried in
// declaration order, first hold fires — assign RHS and outputs evaluate
// against the pre-state, then assigns apply and the state moves.
func (g *generator) flatRow(prog *fsm.Program, mName, lname string, s, e int, recv string, sigParams []string, trConst []string) error {
	spec := prog.Spec()
	ev := prog.EventAt(e)
	row := prog.RowIR(s, e)
	evName := goName(ev.Name)
	stName := goName(prog.StateName(s))

	tr := &goTranslator{messages: g.proto.Messages, vars: make(map[string]varBinding)}
	for _, v := range spec.Vars {
		tr.vars[v.Name] = varBinding{code: recv + ".Vars." + goName(v.Name), typ: v.Type}
	}
	for _, p := range ev.Params {
		tr.vars[p.Name] = varBinding{code: p.Name, typ: p.Type}
	}

	g.p("func %s%sFrom%s(%s *%sMachine%s) (genrt.StepOutcome, error) {", lname, evName, stName, recv, mName,
		prefixJoin(sigParams))
	unconditional := false
	for ti, t := range row.Transitions {
		gi := row.Indices[ti]
		indent := "\t"
		if t.Guard != nil {
			code, _, err := tr.translate(t.Guard)
			if err != nil {
				return fmt.Errorf("codegen: machine %s transition %s guard: %w", spec.Name, t.Name, err)
			}
			g.p("\tif %s {", code)
			indent = "\t\t"
		} else {
			unconditional = true
		}
		for _, a := range t.Assigns {
			code, at, err := tr.translate(a.Expr)
			if err != nil {
				return fmt.Errorf("codegen: machine %s transition %s assign %s: %w", spec.Name, t.Name, a.Var, err)
			}
			v, _ := spec.VarByName(a.Var)
			g.p("%snv%s := %s", indent, goName(a.Var), castTo(code, at, v.Type))
		}
		if len(t.Outputs) == 1 {
			lit, err := g.outputLiteral(spec, tr, t, &t.Outputs[0])
			if err != nil {
				return err
			}
			g.p("%s%s.Out%s = %s", indent, recv, goName(t.Outputs[0].Message), lit)
		}
		for _, a := range t.Assigns {
			g.p("%s%s.Vars.%s = nv%s", indent, recv, goName(a.Var), goName(a.Var))
		}
		g.p("%s%s.state = %sSt%s", indent, recv, mName, goName(t.To))
		g.p("%sreturn %s, nil", indent, trConst[gi])
		if t.Guard != nil {
			g.p("\t}")
		} else {
			break
		}
	}
	if !unconditional {
		g.p("\treturn genrt.StepRejected, nil")
	}
	g.p("}")
	g.p("")
	return nil
}
