// Differential tests pinning the GENERATED artifacts to the compiled
// programs they were emitted from: the inline codec must agree with the
// slot-program interpreter byte for byte on encode and error class for
// error class on decode, and the flat table-dispatch machines must
// replay arbitrary event sequences in lockstep with the fsm interpreter
// — same outcomes, same states, same variables, same outputs. The
// generator consumes wire.Program/fsm.Program IR; these tests are the
// proof that the lowering preserved the programs' semantics.
package gen

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"protodsl/internal/dsl"
	"protodsl/internal/expr"
	"protodsl/internal/fsm"
	"protodsl/internal/genrt"
	"protodsl/internal/wire"
)

// compiledARQ compiles the canonical DSL source this package was
// generated from, so the differential baseline is exactly the codegen
// input.
func compiledARQ(t *testing.T) *dsl.Protocol {
	t.Helper()
	proto, _, err := dsl.Compile(dsl.ARQSource)
	if err != nil {
		t.Fatal(err)
	}
	return proto
}

func packetFrame(prog *wire.Program, seq uint8, payload []byte) *expr.Frame {
	f := prog.NewFrame()
	seqSlot, _ := prog.Slot("seq")
	paySlot, _ := prog.Slot("payload")
	f.Set(seqSlot, expr.U8(uint64(seq)))
	f.Set(paySlot, expr.BytesView(payload))
	return f
}

// TestGeneratedEncodeMatchesSlotProgram: generated AppendEncode and the
// slot interpreter produce byte-identical frames for arbitrary inputs.
func TestGeneratedEncodeMatchesSlotProgram(t *testing.T) {
	proto := compiledARQ(t)
	pktProg := proto.Layouts["Packet"].Program()
	ackProg := proto.Layouts["Ack"].Program()
	f := func(seq uint8, payload []byte) bool {
		if len(payload) > 4096 {
			payload = payload[:4096]
		}
		genEnc, genErr := AppendEncodePacket(nil, &Packet{Seq: seq, Payload: payload})
		slotEnc, slotErr := pktProg.AppendEncode(nil, packetFrame(pktProg, seq, payload))
		if (genErr == nil) != (slotErr == nil) || !bytes.Equal(genEnc, slotEnc) {
			return false
		}
		genAck, genErr := AppendEncodeAck(nil, &Ack{Seq: seq})
		af := ackProg.NewFrame()
		seqSlot, _ := ackProg.Slot("seq")
		af.Set(seqSlot, expr.U8(uint64(seq)))
		slotAck, slotErr := ackProg.AppendEncode(nil, af)
		return genErr == nil && slotErr == nil && bytes.Equal(genAck, slotAck)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// errClass folds the generated-code and interpreter error families into
// comparable classes; the two paths wrap different sentinel sets but
// must reject every input for the same reason.
func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, genrt.ErrShortBuffer) || errors.Is(err, wire.ErrShortBuffer):
		return "short"
	case errors.Is(err, genrt.ErrTrailingBytes) || errors.Is(err, wire.ErrTrailingBytes):
		return "trailing"
	case errors.Is(err, genrt.ErrChecksumMismatch) || errors.Is(err, wire.ErrChecksumMismatch):
		return "checksum"
	case errors.Is(err, genrt.ErrFieldMismatch) || errors.Is(err, wire.ErrFieldMismatch):
		return "mismatch"
	default:
		return "other"
	}
}

// diffDecode feeds one buffer to both decoders and fails unless they
// agree on acceptance, error class and — when accepted — field values.
func diffDecode(t *testing.T, prog *wire.Program, data []byte) {
	t.Helper()
	var p Packet
	genErr := DecodePacketInto(&p, append([]byte(nil), data...))
	frame := prog.NewFrame()
	slotErr := prog.DecodeInto(frame, append([]byte(nil), data...))
	if gc, sc := errClass(genErr), errClass(slotErr); gc != sc {
		t.Fatalf("decode %x: generated %v (%s), slot %v (%s)", data, genErr, gc, slotErr, sc)
	}
	if genErr != nil {
		return
	}
	seqSlot, _ := prog.Slot("seq")
	paySlot, _ := prog.Slot("payload")
	if uint64(p.Seq) != frame.Get(seqSlot).AsUint() {
		t.Fatalf("decode %x: seq %d != slot %d", data, p.Seq, frame.Get(seqSlot).AsUint())
	}
	if !bytes.Equal(p.Payload, frame.Get(paySlot).AsBytes()) {
		t.Fatalf("decode %x: payload diverges", data)
	}
}

// TestGeneratedDecodeMatchesSlotProgram sweeps hostile mutations of
// valid frames — every truncation, every single-bit flip, trailing
// garbage, and random buffers — through both decoders.
func TestGeneratedDecodeMatchesSlotProgram(t *testing.T) {
	proto := compiledARQ(t)
	prog := proto.Layouts["Packet"].Program()
	seeds := [][]byte{}
	for _, payload := range [][]byte{nil, {0}, []byte("hello"), bytes.Repeat([]byte{0xAA}, 64)} {
		enc, err := EncodePacket(Packet{Seq: 7, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, enc)
	}
	for _, enc := range seeds {
		diffDecode(t, prog, enc)
		for n := 0; n < len(enc); n++ {
			diffDecode(t, prog, enc[:n])
		}
		for i := 0; i < len(enc); i++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), enc...)
				mut[i] ^= 1 << bit
				diffDecode(t, prog, mut)
			}
		}
		diffDecode(t, prog, append(append([]byte(nil), enc...), 0xFF))
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		buf := make([]byte, rng.Intn(40))
		rng.Read(buf)
		diffDecode(t, prog, buf)
	}
}

// machineByName pulls one compiled machine spec out of the protocol.
func machineByName(t *testing.T, proto *dsl.Protocol, name string) *fsm.Spec {
	t.Helper()
	for _, m := range proto.Machines {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("no machine %q", name)
	return nil
}

// checkStep compares one delivery's result across the two execution
// models: interpreter StepResult vs flat StepOutcome.
func checkStep(t *testing.T, step int, res fsm.StepResult, ierr error, out genrt.StepOutcome, ferr error, names []string) {
	t.Helper()
	if (ierr == nil) != (ferr == nil) {
		t.Fatalf("step %d: interp err %v, flat err %v", step, ierr, ferr)
	}
	if ierr != nil {
		return
	}
	switch {
	case res.Ignored:
		if out != genrt.StepIgnored {
			t.Fatalf("step %d: interp ignored, flat %d", step, out)
		}
	case res.Rejected:
		if out != genrt.StepRejected {
			t.Fatalf("step %d: interp rejected, flat %d", step, out)
		}
	case res.Fired != nil:
		if !out.Fired() || names[out] != res.Fired.Name {
			t.Fatalf("step %d: interp fired %q, flat outcome %d", step, res.Fired.Name, out)
		}
	}
}

// TestFlatSenderMatchesInterpreter replays long random event sequences
// through the flat SenderMachine and the fsm interpreter in lockstep.
func TestFlatSenderMatchesInterpreter(t *testing.T) {
	proto := compiledARQ(t)
	interp, err := fsm.NewMachine(machineByName(t, proto, "Sender"))
	if err != nil {
		t.Fatal(err)
	}
	flat := NewSenderMachine()
	names := SenderTransitionNames[:]
	rng := rand.New(rand.NewSource(42))
	for step := 0; step < 5000; step++ {
		var res fsm.StepResult
		var ierr, ferr error
		var out genrt.StepOutcome
		switch rng.Intn(6) {
		case 0:
			data := make([]byte, rng.Intn(8))
			rng.Read(data)
			res, ierr = interp.Step("SEND", map[string]expr.Value{"data": expr.Bytes(data)})
			out, ferr = flat.SEND(data)
		case 1:
			// Half the acks match the in-flight seq, half are stale.
			seq := flat.Vars.Seq
			if rng.Intn(2) == 0 {
				seq += uint8(1 + rng.Intn(3))
			}
			res, ierr = interp.Step("OK", map[string]expr.Value{"ack": expr.Msg("Ack", map[string]expr.Value{
				"seq": expr.U8(uint64(seq)), "chk": expr.U8(0),
			})})
			out, ferr = flat.OK(&Ack{Seq: seq})
		case 2:
			res, ierr = interp.Step("FAIL", nil)
			out, ferr = flat.FAIL()
		case 3:
			res, ierr = interp.Step("TIMEOUT", nil)
			out, ferr = flat.TIMEOUT()
		case 4:
			res, ierr = interp.Step("RETRY", nil)
			out, ferr = flat.RETRY()
		case 5:
			res, ierr = interp.Step("FINISH", nil)
			out, ferr = flat.FINISH()
		}
		checkStep(t, step, res, ierr, out, ferr, names)
		if ierr == nil && res.Fired != nil && len(res.Outputs) == 1 {
			o := res.Outputs[0]
			if o.Message != "Packet" {
				t.Fatalf("step %d: unexpected output %s", step, o.Message)
			}
			if o.Fields["seq"].AsUint() != uint64(flat.OutPacket.Seq) ||
				!bytes.Equal(o.Fields["payload"].AsBytes(), flat.OutPacket.Payload) {
				t.Fatalf("step %d: output packet diverges", step)
			}
		}
		if interp.State() != flat.StateName() {
			t.Fatalf("step %d: interp in %s, flat in %s", step, interp.State(), flat.StateName())
		}
		seqVar, _ := interp.Var("seq")
		if seqVar.AsUint() != uint64(flat.Vars.Seq) {
			t.Fatalf("step %d: interp seq %d, flat seq %d", step, seqVar.AsUint(), flat.Vars.Seq)
		}
		if flat.InFinal() != interp.InFinal() {
			t.Fatalf("step %d: final flags diverge", step)
		}
		if flat.InFinal() {
			interp.Reset()
			flat.Reset()
		}
	}
}

// TestFlatReceiverMatchesInterpreter: same lockstep replay for the
// receiver's guarded accept/dupack pair.
func TestFlatReceiverMatchesInterpreter(t *testing.T) {
	proto := compiledARQ(t)
	interp, err := fsm.NewMachine(machineByName(t, proto, "Receiver"))
	if err != nil {
		t.Fatal(err)
	}
	flat := NewReceiverMachine()
	names := ReceiverTransitionNames[:]
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 5000; step++ {
		var res fsm.StepResult
		var ierr, ferr error
		var out genrt.StepOutcome
		if rng.Intn(20) == 0 {
			res, ierr = interp.Step("CLOSE", nil)
			out, ferr = flat.CLOSE()
		} else {
			seq := flat.Vars.Seq
			if rng.Intn(2) == 0 {
				seq -= uint8(1 + rng.Intn(2))
			}
			payload := make([]byte, rng.Intn(8))
			rng.Read(payload)
			res, ierr = interp.Step("RECV", map[string]expr.Value{"p": expr.Msg("Packet", map[string]expr.Value{
				"seq": expr.U8(uint64(seq)), "chk": expr.U8(0),
				"paylen": expr.U16(uint64(len(payload))), "payload": expr.Bytes(payload),
			})})
			out, ferr = flat.RECV(&Packet{Seq: seq, Payload: payload})
		}
		checkStep(t, step, res, ierr, out, ferr, names)
		if interp.State() != flat.StateName() {
			t.Fatalf("step %d: interp in %s, flat in %s", step, interp.State(), flat.StateName())
		}
		seqVar, _ := interp.Var("seq")
		if seqVar.AsUint() != uint64(flat.Vars.Seq) {
			t.Fatalf("step %d: interp seq %d, flat seq %d", step, seqVar.AsUint(), flat.Vars.Seq)
		}
		if flat.InFinal() {
			interp.Reset()
			flat.Reset()
		}
	}
}
