package rtnet

import (
	"container/heap"
	"time"

	"protodsl/internal/netsim"
)

// Loop is a shard's real-clock scheduler: the netsim.Runtime
// implementation protocol engines run against when they are attached to
// a real socket instead of a simulator.
//
// It mirrors the simulator's timer guarantees exactly — the heap is
// indexed, so Cancel physically removes the event (heap.Remove) and a
// cancelled timer can never fire or cost the event loop anything — but
// time is the host's monotonic clock, measured as a Duration since the
// owning Node's start so engine-visible timestamps look just like
// virtual ones.
//
// A Loop belongs to exactly one shard goroutine. Now/After/Post must
// only be called from inside that shard's event loop (engine handlers,
// timer callbacks, and functions run via Node.Do / Flow.Do all qualify).
type Loop struct {
	start   time.Time
	queue   timerHeap
	pool    []*timerEvent // free list of event structs for reuse
	posted  []func()
	nextSeq uint64
}

var _ netsim.Runtime = (*Loop)(nil)

func newLoop(start time.Time) *Loop { return &Loop{start: start} }

// timerEvent is a scheduled callback; index is its heap position so
// cancellation can heap.Remove it (-1 once dequeued), exactly like the
// simulator's event struct.
type timerEvent struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int
}

type timerHeap []*timerEvent

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	e := x.(*timerEvent)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

func (l *Loop) schedule(at time.Duration, fn func()) *timerEvent {
	var e *timerEvent
	if n := len(l.pool); n > 0 {
		e = l.pool[n-1]
		l.pool[n-1] = nil
		l.pool = l.pool[:n-1]
	} else {
		e = &timerEvent{}
	}
	e.at, e.seq, e.fn = at, l.nextSeq, fn
	l.nextSeq++
	heap.Push(&l.queue, e)
	return e
}

func (l *Loop) release(e *timerEvent) {
	e.fn = nil
	l.pool = append(l.pool, e)
}

func (l *Loop) remove(e *timerEvent) {
	if e.index < 0 {
		return
	}
	heap.Remove(&l.queue, e.index)
	l.release(e)
}

// rtTimer is the real-clock netsim.Timer implementation.
type rtTimer struct {
	loop  *Loop
	ev    *timerEvent
	fired bool
}

// Cancel prevents the timer from firing and removes its event from the
// heap; cancelling an already-fired or already-cancelled timer is a
// no-op (the same contract as the simulator's timers).
func (t *rtTimer) Cancel() {
	if t.ev == nil {
		return
	}
	t.loop.remove(t.ev)
	t.ev = nil
}

// Fired reports whether the callback has run.
func (t *rtTimer) Fired() bool { return t.fired }

// Active reports whether the timer is still pending.
func (t *rtTimer) Active() bool { return t.ev != nil }

// Now returns the monotonic time since the node started.
func (l *Loop) Now() time.Duration { return time.Since(l.start) }

// After schedules fn to run after real duration d on this shard's loop.
func (l *Loop) After(d time.Duration, fn func()) netsim.Timer {
	t := &rtTimer{loop: l}
	t.ev = l.schedule(l.Now()+d, func() {
		t.fired = true
		t.ev = nil
		fn()
	})
	return t
}

// Post schedules fn to run promptly, after work already queued for this
// wakeup.
func (l *Loop) Post(fn func()) { l.posted = append(l.posted, fn) }

// next returns the earliest pending timer deadline.
func (l *Loop) next() (time.Duration, bool) {
	if len(l.queue) == 0 {
		return 0, false
	}
	return l.queue[0].at, true
}

// runDue fires every timer whose deadline has passed, interleaving
// posted functions the way the simulator does.
func (l *Loop) runDue() {
	for len(l.queue) > 0 {
		now := time.Since(l.start)
		top := l.queue[0]
		if top.at > now {
			return
		}
		heap.Pop(&l.queue)
		fn := top.fn
		l.release(top)
		fn()
		l.runPosted()
	}
}

// runPosted drains the posted-function queue (functions it runs may
// post more; those run too).
func (l *Loop) runPosted() {
	for len(l.posted) > 0 {
		fn := l.posted[0]
		// Shift rather than swap: posted order is FIFO, as in the
		// simulator's same-instant event ordering.
		copy(l.posted, l.posted[1:])
		l.posted[len(l.posted)-1] = nil
		l.posted = l.posted[:len(l.posted)-1]
		fn()
	}
}
