//go:build linux && (amd64 || arm64)

// Batched packet I/O via recvmmsg/sendmmsg with UDP segmentation
// offload: many datagrams per syscall, into preallocated buffers, with
// raw sockaddr conversion so the hot path performs zero allocations.
//
// On top of the PR 3 mmsg paths this file implements the PR 5 segment
// coalescing: runs of equal-size staged packets to one peer ride a
// single sendmmsg entry as a UDP_SEGMENT (GSO) super-datagram — one
// syscall-side packet the kernel splits into wire datagrams — and the
// receive side enables UDP_GRO so bursts from one peer arrive
// re-coalesced, with the segment size delivered in a control message
// and the frames split back apart in userspace. Both are probed at
// socket setup and degrade to the plain mmsg paths when the kernel
// refuses them.
//
// The build tag pins the architectures whose struct mmsghdr layout
// (56-byte msghdr, 8-byte alignment) the Go struct below mirrors; other
// platforms use the portable fallback in io_fallback.go.

package rtnet

import (
	"net/netip"
	"syscall"
	"unsafe"

	"protodsl/internal/obs"
)

const (
	// Frozen-syscall-package gaps: SO_REUSEPORT (kernel 3.9) and the
	// UDP segmentation options (4.18/5.0) postdate the syscall freeze.
	soREUSEPORT = 0xf
	solUDP      = 17
	udpSegment  = 103 // UDP_SEGMENT: per-send GSO segment size
	udpGRO      = 104 // UDP_GRO: coalesce receives, announce segment size

	// udpMaxSegments mirrors the kernel's UDP_MAX_SEGMENTS cap on how
	// many wire datagrams one GSO send may carry.
	udpMaxSegments = 64
	// maxGSOBytes bounds one GSO super-datagram (the UDP length field
	// minus headroom for headers).
	maxGSOBytes = 65000
	// maxGSOSegment bounds the per-segment size we are willing to
	// coalesce: the kernel rejects UDP_SEGMENT sends whose gso_size
	// exceeds the route MTU (EINVAL), so frames that may not fit a
	// typical path MTU take the plain sendmmsg path instead — where
	// they IP-fragment exactly as they did before GSO existed. 1400
	// clears Ethernet (1500) and common tunnel overheads.
	maxGSOSegment = 1400

	// sizeofCmsghdr and the alignment rules below mirror <sys/socket.h>
	// for 64-bit Linux (8-byte aligned control messages).
	sizeofCmsghdr = 16
	cmsgSpace     = sizeofCmsghdr + 8 // header + padded uint16 payload
)

// cmsghdr mirrors struct cmsghdr on 64-bit Linux.
type cmsghdr struct {
	Len   uint64
	Level int32
	Type  int32
}

// reusePortSupported reports whether per-shard sockets can share one
// port; on Linux they can.
const reusePortSupported = true

// setReusePort sets SO_REUSEPORT on a socket about to bind (wired into
// net.ListenConfig.Control).
func setReusePort(c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soREUSEPORT, 1)
	}); err != nil {
		return err
	}
	return serr
}

// probeGSO reports whether the kernel accepts UDP_SEGMENT on this
// socket (setting it to 0 leaves per-socket GSO off; sends opt in with
// a control message).
func probeGSO(raw syscall.RawConn) bool {
	ok := false
	_ = raw.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil
	})
	return ok
}

// enableGRO turns on UDP_GRO; coalesced deliveries then carry the
// segment size in a UDP_GRO control message.
func enableGRO(raw syscall.RawConn) bool {
	ok := false
	_ = raw.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1) == nil
	})
	return ok
}

// parseGROCmsg extracts the UDP_GRO segment size from receive control
// data; 0 means the delivery was not coalesced.
func parseGROCmsg(oob []byte) int {
	for len(oob) >= sizeofCmsghdr {
		h := (*cmsghdr)(unsafe.Pointer(&oob[0]))
		if h.Len < sizeofCmsghdr || int(h.Len) > len(oob) {
			return 0
		}
		if h.Level == solUDP && h.Type == udpGRO && int(h.Len) >= sizeofCmsghdr+2 {
			// The kernel writes a u16 (some paths widen to int32); the
			// low two bytes are the segment size either way on LE.
			return int(*(*uint16)(unsafe.Pointer(&oob[sizeofCmsghdr])))
		}
		// Advance to the next (8-byte aligned) control message.
		adv := (int(h.Len) + 7) &^ 7
		if adv <= 0 || adv > len(oob) {
			return 0
		}
		oob = oob[adv:]
	}
	return 0
}

// putSegmentCmsg fills a preallocated control buffer with a
// UDP_SEGMENT message carrying seg and returns the control length.
func putSegmentCmsg(ctrl []byte, seg int) uint64 {
	h := (*cmsghdr)(unsafe.Pointer(&ctrl[0]))
	h.Len = sizeofCmsghdr + 2
	h.Level = solUDP
	h.Type = udpSegment
	*(*uint16)(unsafe.Pointer(&ctrl[sizeofCmsghdr])) = uint16(seg)
	return cmsgSpace
}

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// datagram length. Go pads the struct to 8-byte alignment, matching C.
type mmsghdr struct {
	hdr  syscall.Msghdr
	mlen uint32
}

// burstReader drains a socket with recvmmsg after the reader's blocking
// read has woken it: up to Batch datagrams per syscall, each possibly a
// GRO-coalesced bundle whose segment size packet() reports.
type burstReader struct {
	bufs  [][]byte
	iovs  []syscall.Iovec
	rsas  []syscall.RawSockaddrAny
	ctrls [][]byte
	msgs  []mmsghdr
}

func newBurstReader(batchSize, maxPacket int) *burstReader {
	r := &burstReader{
		bufs:  make([][]byte, batchSize),
		iovs:  make([]syscall.Iovec, batchSize),
		rsas:  make([]syscall.RawSockaddrAny, batchSize),
		ctrls: make([][]byte, batchSize),
		msgs:  make([]mmsghdr, batchSize),
	}
	for i := range r.bufs {
		r.bufs[i] = make([]byte, maxPacket)
		r.ctrls[i] = make([]byte, cmsgSpace)
		r.iovs[i].Base = &r.bufs[i][0]
		r.iovs[i].SetLen(maxPacket)
		r.msgs[i].hdr.Name = (*byte)(unsafe.Pointer(&r.rsas[i]))
		r.msgs[i].hdr.Iov = &r.iovs[i]
		r.msgs[i].hdr.Iovlen = 1
		r.msgs[i].hdr.Control = &r.ctrls[i][0]
	}
	return r
}

// capacity returns the burst size (datagrams per recvmmsg).
func (r *burstReader) capacity() int { return len(r.msgs) }

// read receives up to capacity datagrams without blocking (MSG_DONTWAIT)
// and returns how many arrived; 0 when the socket is drained.
func (r *burstReader) read(raw syscall.RawConn) int {
	count := 0
	rerr := raw.Read(func(fd uintptr) bool {
		for i := range r.msgs {
			r.msgs[i].hdr.Namelen = syscall.SizeofSockaddrAny
			r.msgs[i].hdr.SetControllen(cmsgSpace)
			r.msgs[i].mlen = 0
		}
		for {
			n, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
				uintptr(unsafe.Pointer(&r.msgs[0])), uintptr(len(r.msgs)),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno != 0 {
				count = 0
			} else {
				count = int(n)
			}
			return true // never park: this is the opportunistic burst
		}
	})
	if rerr != nil {
		return 0
	}
	return count
}

// packet returns the i-th received datagram, its source, and the GRO
// segment size (0: a single frame). The bytes alias the reader's
// buffers: valid until the next read call.
func (r *burstReader) packet(i int) ([]byte, netip.AddrPort, int) {
	seg := 0
	if cl := r.msgs[i].hdr.Controllen; cl > 0 {
		seg = parseGROCmsg(r.ctrls[i][:cl])
	}
	return r.bufs[i][:r.msgs[i].mlen], fromRawSockaddr(&r.rsas[i]), seg
}

// burstSender flushes a shard's staged packets with sendmmsg: one
// syscall per burst, and within the burst one *entry* per run of
// equal-size packets to one peer — a UDP_SEGMENT (GSO) super-datagram
// the kernel splits into wire frames. A full socket buffer parks the
// shard on the netpoller (raw.Write) rather than dropping —
// backpressure, not loss.
type burstSender struct {
	iovs  []syscall.Iovec
	rsas  []syscall.RawSockaddrAny
	ctrls [][]byte
	msgs  []mmsghdr
	// pkts[i] is how many staged packets message i carries (GSO runs
	// carry several), so partial sendmmsg completions resume at the
	// right staged packet.
	pkts []int
}

func newBurstSender(batchSize int) *burstSender {
	s := &burstSender{
		iovs:  make([]syscall.Iovec, batchSize),
		rsas:  make([]syscall.RawSockaddrAny, batchSize),
		ctrls: make([][]byte, batchSize),
		msgs:  make([]mmsghdr, batchSize),
		pkts:  make([]int, batchSize),
	}
	for i := range s.msgs {
		s.ctrls[i] = make([]byte, cmsgSpace)
		s.msgs[i].hdr.Name = (*byte)(unsafe.Pointer(&s.rsas[i]))
		s.msgs[i].hdr.Iov = &s.iovs[i]
		s.msgs[i].hdr.Iovlen = 1
	}
	return s
}

// coalesceRun returns how many staged packets starting at out[i] can
// ride one GSO super-datagram: consecutive packets to the same
// destination, all sized like the first except for an optional shorter
// final segment (the UDP_SEGMENT contract), within the kernel's
// segment-count and byte caps. Staged payloads are contiguous in the
// flush buffer by construction, so the run is a single iovec.
func coalesceRun(out []outPkt, i int) int {
	first := &out[i]
	seg := first.end - first.off
	if seg > maxGSOSegment {
		return 1 // may exceed the path MTU: let the plain path fragment it
	}
	total := seg
	n := 1
	for i+n < len(out) && n < udpMaxSegments {
		p := &out[i+n]
		sz := p.end - p.off
		if p.to != first.to || sz > seg || total+sz > maxGSOBytes {
			break
		}
		total += sz
		n++
		if sz < seg {
			// A short segment terminates the super-datagram.
			break
		}
	}
	return n
}

// send transmits every staged packet on the shard's own socket,
// coalescing GSO runs (when the socket supports UDP_SEGMENT) and
// batching up to the burst size per sendmmsg. Undeliverable packets are
// counted by reason into the shard's stats block (drop_send_family for
// destinations this socket's family cannot carry, drop_send_error for
// socket refusals); GSO coalescing is counted per successfully sent
// super-datagram. The rest are delivered or retried until writable.
func (s *burstSender) send(sh *Shard, out []outPkt, buf []byte) {
	n := sh.node
	raw := sh.raw
	i := 0
	for i < len(out) {
		// Stage a burst of messages over consecutive convertible
		// destinations.
		m := 0
		staged := 0
		for i+staged < len(out) && m < len(s.msgs) {
			p := &out[i+staged]
			nl, ok := putRawSockaddr(&s.rsas[m], p.to, n.v6)
			if !ok {
				break
			}
			run := 1
			if n.gso {
				run = coalesceRun(out, i+staged)
			}
			last := &out[i+staged+run-1]
			s.iovs[m].Base = &buf[p.off]
			s.iovs[m].SetLen(last.end - p.off)
			s.msgs[m].hdr.Namelen = nl
			if run > 1 {
				s.msgs[m].hdr.Control = &s.ctrls[m][0]
				s.msgs[m].hdr.SetControllen(int(putSegmentCmsg(s.ctrls[m], p.end-p.off)))
			} else {
				s.msgs[m].hdr.Control = nil
				s.msgs[m].hdr.SetControllen(0)
			}
			s.pkts[m] = run
			staged += run
			m++
		}
		if m == 0 { // out[i]'s destination family cannot ride this socket
			sh.obs.Inc(obs.DropSendFamily)
			i++
			continue
		}
		k := 0
		werr := raw.Write(func(fd uintptr) bool {
			for {
				r0, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
					uintptr(unsafe.Pointer(&s.msgs[0])), uintptr(m),
					uintptr(syscall.MSG_DONTWAIT), 0, 0)
				switch errno {
				case syscall.EINTR:
					continue
				case syscall.EAGAIN:
					return false // park on the poller until writable
				case 0:
					k = int(r0)
				default:
					k = -1
				}
				return true
			}
		})
		if werr != nil {
			sh.obs.Add(obs.DropSendError, uint64(len(out)-i))
			return
		}
		if k < 0 {
			// A hard per-send error (e.g. an unroutable destination):
			// drop only the first staged message and keep flushing the
			// rest rather than discarding the whole burst.
			sh.obs.Add(obs.DropSendError, uint64(s.pkts[0]))
			i += s.pkts[0]
			continue
		}
		for j := 0; j < k; j++ {
			if s.pkts[j] > 1 {
				sh.obs.Inc(obs.GSOBursts)
				sh.obs.Add(obs.GSOSegments, uint64(s.pkts[j]))
			}
			i += s.pkts[j]
		}
	}
}

// fromRawSockaddr converts a kernel-filled sockaddr to netip; the zero
// AddrPort marks an address family we do not speak.
func fromRawSockaddr(rsa *syscall.RawSockaddrAny) netip.AddrPort {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), uint16(p[0])<<8|uint16(p[1]))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), uint16(p[0])<<8|uint16(p[1]))
	}
	return netip.AddrPort{}
}

// putRawSockaddr fills rsa for a send to ap on a socket of the node's
// family (v4-mapped addresses ride a v6 socket transparently).
func putRawSockaddr(rsa *syscall.RawSockaddrAny, ap netip.AddrPort, v6 bool) (uint32, bool) {
	a := ap.Addr()
	if v6 {
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
		sa.Addr = a.As16()
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(ap.Port()>>8), byte(ap.Port())
		return syscall.SizeofSockaddrInet6, true
	}
	if !a.Is4() && !a.Is4In6() {
		return 0, false
	}
	sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
	*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
	sa.Addr = a.As4()
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0], p[1] = byte(ap.Port()>>8), byte(ap.Port())
	return syscall.SizeofSockaddrInet4, true
}
