package expr

import (
	"bytes"
	"testing"
)

func canonValues() []Value {
	shape := NewMsgShape("Pkt", []string{"seq", "payload"})
	fr := NewFrame(shape.NumFields())
	fr.Set(0, U8(7))
	fr.Set(1, Bytes([]byte{0xAA}))
	partial := NewFrame(shape.NumFields())
	partial.Set(0, U16(7)) // slot 1 left invalid: reads as a missing field
	return []Value{
		Bool(false), Bool(true),
		U8(0), U8(1), U8(255),
		U16(1), U32(1), U64(1), // same number, distinct widths
		U16(0xFFFF), U32(0xFFFFFFFF), U64(^uint64(0)),
		Bytes(nil), Bytes([]byte{0}), Bytes([]byte{0, 0}), Bytes([]byte{1, 2, 3}),
		Str(""), Str("x"), Str("xy"),
		Msg("M", nil),
		Msg("M", map[string]Value{"a": U8(1)}),
		Msg("M", map[string]Value{"a": U8(2)}),
		Msg("M", map[string]Value{"b": U8(1)}),
		Msg("N", map[string]Value{"a": U8(1)}),
		Msg("M", map[string]Value{"a": U8(1), "b": Str("s")}),
		Msg("Outer", map[string]Value{"in": Msg("Inner", map[string]Value{"f": Bool(true)})}),
		FrameMsg(shape, fr),
		FrameMsg(shape, partial),
	}
}

func TestCanonRoundTrip(t *testing.T) {
	for _, v := range canonValues() {
		enc := v.AppendCanon(nil)
		got, rest, err := DecodeCanon(enc)
		if err != nil {
			t.Fatalf("DecodeCanon(%s): %v", v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("DecodeCanon(%s): %d leftover bytes", v, len(rest))
		}
		if !got.Equal(v) {
			t.Fatalf("round trip of %s gave %s", v, got)
		}
		if got.Kind() == KindUint && got.Bits() != v.Bits() {
			t.Fatalf("round trip of %s lost width: got %d bits", v, got.Bits())
		}
		// Re-encoding the decoded value must reproduce the bytes exactly:
		// canonical form is unique per value.
		if re := got.AppendCanon(nil); !bytes.Equal(re, enc) {
			t.Fatalf("re-encode of %s differs: %x vs %x", v, re, enc)
		}
	}
}

func TestCanonInjective(t *testing.T) {
	seen := make(map[string]Value)
	for _, v := range canonValues() {
		k := string(v.AppendCanon(nil))
		if prev, dup := seen[k]; dup {
			// The two frame/map representations of the same message are
			// supposed to collide; anything else is an injectivity bug.
			if !prev.Equal(v) {
				t.Errorf("canon collision: %s vs %s (%x)", prev, v, k)
			}
			continue
		}
		seen[k] = v
	}
}

func TestCanonMapAndFrameMsgsEncodeIdentically(t *testing.T) {
	shape := NewMsgShape("Pkt", []string{"seq", "payload"})
	fr := NewFrame(shape.NumFields())
	fr.Set(0, U8(7))
	fr.Set(1, Bytes([]byte{0xAA}))
	framed := FrameMsg(shape, fr)
	mapped := Msg("Pkt", map[string]Value{"seq": U8(7), "payload": Bytes([]byte{0xAA})})
	if a, b := framed.AppendCanon(nil), mapped.AppendCanon(nil); !bytes.Equal(a, b) {
		t.Fatalf("frame-backed %x vs map-backed %x", a, b)
	}
}

func TestCanonConcatenationUnambiguous(t *testing.T) {
	// Encoding a sequence of values by concatenation must decode back to
	// the same sequence — the property the model checker's global state
	// encoding relies on.
	seq := []Value{U8(1), Bytes([]byte{2, 3}), Msg("M", map[string]Value{"a": Str("x")}), Bool(true)}
	var enc []byte
	for _, v := range seq {
		enc = v.AppendCanon(enc)
	}
	rest := enc
	for i, want := range seq {
		var got Value
		var err error
		got, rest, err = DecodeCanon(rest)
		if err != nil {
			t.Fatalf("decode #%d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("decode #%d: got %s, want %s", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
}

func TestCanonDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":           nil,
		"unknown tag":     {0x7F},
		"truncated bool":  {canonBool},
		"bad bool":        {canonBool, 2},
		"bad width":       {canonUint, 7, 1},
		"truncated uint":  {canonUint, 8},
		"oversized uint":  append([]byte{canonUint, 8}, U16(300).AppendCanon(nil)[2:]...),
		"truncated bytes": {canonBytes, 5, 1, 2},
		"bad count":       {canonMsg, 1, 'M'},
		"truncated field": {canonMsg, 1, 'M', 2, 1, 'a', canonBool, 1},
	}
	for name, data := range cases {
		if _, _, err := DecodeCanon(data); err == nil {
			t.Errorf("%s: expected error for % x", name, data)
		}
	}
}

func TestCanonDecodeDepthLimit(t *testing.T) {
	v := Bool(true)
	for i := 0; i < canonMaxDepth+2; i++ {
		v = Msg("M", map[string]Value{"f": v})
	}
	if _, _, err := DecodeCanon(v.AppendCanon(nil)); err == nil {
		t.Fatal("expected depth-limit error")
	}
}

func TestCanonDecodeHostileNoPanic(t *testing.T) {
	// Arbitrary byte soup must fail cleanly, never panic or over-read.
	inputs := [][]byte{
		{canonMsg, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		{canonBytes, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		{canonMsg, 1, 'M', 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
	}
	for _, data := range inputs {
		if _, _, err := DecodeCanon(data); err == nil {
			t.Errorf("expected error for % x", data)
		}
	}
}
