// Package expr implements the total expression language shared by the
// protocol DSL: field computations, transition guards and variable
// assignments are all written in it.
//
// The language is total by construction — it has no loops, no recursion and
// no user-defined functions — so every expression evaluates in bounded time.
// This mirrors the totality requirement the paper places on its
// dependently-typed host language (§3.1: "We require programs to be total").
//
// Unsigned integers carry an explicit bit width (8, 16, 32 or 64) and
// arithmetic wraps at the promoted width, so `seq + 1` over an 8-bit
// sequence number wraps from 255 to 0 exactly as the paper's `Byte`
// arithmetic does.
//
// Concurrency: parsed expressions and compiled closures are immutable
// and safe for concurrent evaluation; a Frame is single-owner scratch —
// one goroutine per Frame.
package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime kinds of values.
type Kind int

// Value kinds. KindInvalid is deliberately the zero value so that
// uninitialised values are detectably invalid.
const (
	KindInvalid Kind = iota
	KindBool
	KindUint
	KindBytes
	KindString
	KindMsg
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindUint:
		return "uint"
	case KindBytes:
		return "bytes"
	case KindString:
		return "string"
	case KindMsg:
		return "message"
	default:
		return "invalid"
	}
}

// Value is a runtime value of the expression language.
//
// The zero value is invalid; construct values with the Bool, Uint, Bytes,
// Str and Msg helpers.
type Value struct {
	kind Kind
	b    bool
	u    uint64
	bits int
	bs   []byte
	s    string
	msg  map[string]Value
	name string // message type name when kind == KindMsg

	// Slot-backed message representation (see shape.go): when shape is
	// non-nil the fields live in fr's slots instead of msg.
	shape *MsgShape
	fr    *Frame
}

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Uint returns an unsigned integer value of the given bit width
// (8, 16, 32 or 64). The value is truncated to the width.
func Uint(v uint64, bits int) Value {
	return Value{kind: KindUint, u: truncate(v, bits), bits: normBits(bits)}
}

// U8 returns an 8-bit unsigned value.
func U8(v uint64) Value { return Uint(v, 8) }

// U16 returns a 16-bit unsigned value.
func U16(v uint64) Value { return Uint(v, 16) }

// U32 returns a 32-bit unsigned value.
func U32(v uint64) Value { return Uint(v, 32) }

// U64 returns a 64-bit unsigned value.
func U64(v uint64) Value { return Uint(v, 64) }

// Bytes returns a byte-slice value. The slice is copied so later caller
// mutations cannot alias into the value.
func Bytes(b []byte) Value {
	cp := make([]byte, len(b))
	copy(cp, b)
	return Value{kind: KindBytes, bs: cp}
}

// BytesView returns a byte-slice value that aliases b without copying.
// It is the allocation-free construction path for hot loops (compiled
// execution, AppendEncode/DecodeInto): the caller must not mutate b while
// the value is live.
func BytesView(b []byte) Value { return Value{kind: KindBytes, bs: b} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Msg returns a message value with the given type name and fields.
// The field map is copied.
func Msg(name string, fields map[string]Value) Value {
	cp := make(map[string]Value, len(fields))
	for k, v := range fields {
		cp[k] = v
	}
	return Value{kind: KindMsg, name: name, msg: cp}
}

// MsgView returns a message value that aliases the field map without
// copying. It is the allocation-free counterpart of Msg for hot loops:
// the caller must not mutate fields while the value is live (in
// particular, not while a machine variable could still hold it).
func MsgView(name string, fields map[string]Value) Value {
	return Value{kind: KindMsg, name: name, msg: fields}
}

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value has been initialised.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsBool returns the boolean payload. It must only be called when
// Kind() == KindBool.
func (v Value) AsBool() bool { return v.b }

// AsUint returns the unsigned integer payload.
func (v Value) AsUint() uint64 { return v.u }

// Bits returns the bit width of an unsigned integer value.
func (v Value) Bits() int { return v.bits }

// AsBytes returns the byte payload. The returned slice is a copy.
func (v Value) AsBytes() []byte {
	cp := make([]byte, len(v.bs))
	copy(cp, v.bs)
	return cp
}

// RawBytes returns the byte payload without copying. Callers must not
// mutate the result.
func (v Value) RawBytes() []byte { return v.bs }

// AsString returns the string payload.
func (v Value) AsString() string { return v.s }

// MsgName returns the message type name of a message value.
func (v Value) MsgName() string { return v.name }

// Field returns the named field of a message value (either
// representation).
func (v Value) Field(name string) (Value, bool) {
	return v.fieldByName(name)
}

// MsgFields returns a copy of the fields of a message value.
func (v Value) MsgFields() map[string]Value {
	if v.shape != nil {
		cp := make(map[string]Value, len(v.shape.names))
		for i, name := range v.shape.names {
			if fv := v.fr.slots[i]; fv.kind != KindInvalid {
				cp[name] = fv
			}
		}
		return cp
	}
	cp := make(map[string]Value, len(v.msg))
	for k, val := range v.msg {
		cp[k] = val
	}
	return cp
}

// WithBits returns a copy of an unsigned value truncated to the given
// bit width. For other kinds it returns the value unchanged.
func (v Value) WithBits(bits int) Value {
	if v.kind != KindUint {
		return v
	}
	return Uint(v.u, bits)
}

// Equal reports deep structural equality of two values.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindBool:
		return v.b == o.b
	case KindUint:
		return v.u == o.u
	case KindBytes:
		return string(v.bs) == string(o.bs)
	case KindString:
		return v.s == o.s
	case KindMsg:
		if v.name != o.name || v.numMsgFields() != o.numMsgFields() {
			return false
		}
		for _, k := range v.msgFieldNames() {
			fv, ok := v.fieldByName(k)
			if !ok {
				continue // absent in a frame-backed value's shape list
			}
			ov, ok := o.fieldByName(k)
			if !ok || !fv.Equal(ov) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.kind {
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindUint:
		return fmt.Sprintf("%d:u%d", v.u, v.bits)
	case KindBytes:
		return fmt.Sprintf("0x%x", v.bs)
	case KindString:
		return strconv.Quote(v.s)
	case KindMsg:
		var sb strings.Builder
		sb.WriteString(v.name)
		sb.WriteString("{")
		first := true
		for _, k := range v.msgFieldNames() {
			fv, ok := v.fieldByName(k)
			if !ok {
				continue
			}
			if !first {
				sb.WriteString(", ")
			}
			first = false
			sb.WriteString(k)
			sb.WriteString(": ")
			sb.WriteString(fv.String())
		}
		sb.WriteString("}")
		return sb.String()
	default:
		return "<invalid>"
	}
}

// HashKey returns a deterministic string usable as a map key for state
// hashing (used by the model checker). It is injective for the value
// domain used by protocol specs. Unsigned keys include the bit width:
// width decides where arithmetic wraps, so a u8 and a u16 holding the
// same number are behaviourally distinct states and must not be merged.
func (v Value) HashKey() string {
	switch v.kind {
	case KindBool:
		if v.b {
			return "b1"
		}
		return "b0"
	case KindUint:
		return "u" + strconv.FormatUint(v.u, 16) + "w" + strconv.Itoa(v.bits)
	case KindBytes:
		return "y" + string(v.bs)
	case KindString:
		return "s" + v.s
	case KindMsg:
		var sb strings.Builder
		sb.WriteString("m")
		sb.WriteString(v.name)
		for _, k := range v.msgFieldNames() {
			fv, ok := v.fieldByName(k)
			if !ok {
				continue
			}
			sb.WriteString("|")
			sb.WriteString(k)
			sb.WriteString("=")
			sb.WriteString(fv.HashKey())
		}
		return sb.String()
	default:
		return "?"
	}
}

func sortedKeys(m map[string]Value) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort: field maps are tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func normBits(bits int) int {
	switch {
	case bits <= 8:
		return 8
	case bits <= 16:
		return 16
	case bits <= 32:
		return 32
	default:
		return 64
	}
}

func truncate(v uint64, bits int) uint64 {
	bits = normBits(bits)
	if bits >= 64 {
		return v
	}
	return v & ((1 << uint(bits)) - 1)
}

// FitBits returns the smallest normalised width (8, 16, 32, 64) that can
// represent v. Integer literals adopt this width so byte arithmetic wraps
// naturally (255 + 1 == 0 at width 8).
func FitBits(v uint64) int {
	switch {
	case v <= 0xFF:
		return 8
	case v <= 0xFFFF:
		return 16
	case v <= 0xFFFFFFFF:
		return 32
	default:
		return 64
	}
}
