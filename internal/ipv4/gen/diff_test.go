// Differential tests pinning the GENERATED IPv4 codec to the slot
// program it was emitted from: byte-identical encodes (sub-byte fields,
// the split 13-bit fragment offset, the inet16 checksum, the
// expression-sized options) and error-class-identical decodes under
// exhaustive mutation.
package gen

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"protodsl/internal/dsl"
	"protodsl/internal/expr"
	"protodsl/internal/genrt"
	"protodsl/internal/wire"
)

func headerProgram(t *testing.T) *wire.Program {
	t.Helper()
	proto, _, err := dsl.Compile(dsl.IPv4Source)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range proto.Layouts {
		return l.Program()
	}
	t.Fatal("no layouts")
	return nil
}

func headerFrame(prog *wire.Program, h *IPv4Header) *expr.Frame {
	f := prog.NewFrame()
	set := func(name string, v expr.Value) {
		slot, ok := prog.Slot(name)
		if ok {
			f.Set(slot, v)
		}
	}
	set("version", expr.Uint(uint64(h.Version), 4))
	set("ihl", expr.Uint(uint64(h.Ihl), 4))
	set("tos", expr.U8(uint64(h.Tos)))
	set("total_length", expr.U16(uint64(h.TotalLength)))
	set("identification", expr.U16(uint64(h.Identification)))
	set("flags", expr.Uint(uint64(h.Flags), 3))
	set("fragment_offset", expr.Uint(uint64(h.FragmentOffset), 13))
	set("ttl", expr.U8(uint64(h.Ttl)))
	set("protocol", expr.U8(uint64(h.Protocol)))
	set("source", expr.U32(uint64(h.Source)))
	set("destination", expr.U32(uint64(h.Destination)))
	set("options", expr.BytesView(h.Options))
	return f
}

// TestGeneratedEncodeMatchesSlotProgram: both paths produce identical
// bytes for arbitrary headers, including option-bearing IHL > 5 forms.
func TestGeneratedEncodeMatchesSlotProgram(t *testing.T) {
	prog := headerProgram(t)
	f := func(tos, ttl, proto, ihlExtra uint8, id, frag uint16, flags uint8, src, dst uint32, opts []byte) bool {
		ihl := 5 + ihlExtra%4
		h := IPv4Header{
			Version: 4, Ihl: ihl, Tos: tos, TotalLength: 20 + 4*uint16(ihl-5),
			Identification: id, Flags: flags & 0x7, FragmentOffset: frag & 0x1FFF,
			Ttl: ttl, Protocol: proto, Source: src, Destination: dst,
			Options: append([]byte(nil), make([]byte, 4*(ihl-5))...),
		}
		for i := range h.Options {
			if i < len(opts) {
				h.Options[i] = opts[i]
			}
		}
		genEnc, genErr := AppendEncodeIPv4Header(nil, &h)
		slotEnc, slotErr := prog.AppendEncode(nil, headerFrame(prog, &h))
		return genErr == nil && slotErr == nil && bytes.Equal(genEnc, slotEnc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func errClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, genrt.ErrShortBuffer) || errors.Is(err, wire.ErrShortBuffer):
		return "short"
	case errors.Is(err, genrt.ErrTrailingBytes) || errors.Is(err, wire.ErrTrailingBytes):
		return "trailing"
	case errors.Is(err, genrt.ErrChecksumMismatch) || errors.Is(err, wire.ErrChecksumMismatch):
		return "checksum"
	case errors.Is(err, genrt.ErrFieldMismatch) || errors.Is(err, wire.ErrFieldMismatch):
		return "mismatch"
	default:
		return "other"
	}
}

func diffDecode(t *testing.T, prog *wire.Program, data []byte) {
	t.Helper()
	var h IPv4Header
	genErr := DecodeIPv4HeaderInto(&h, append([]byte(nil), data...))
	frame := prog.NewFrame()
	slotErr := prog.DecodeInto(frame, append([]byte(nil), data...))
	if gc, sc := errClass(genErr), errClass(slotErr); gc != sc {
		t.Fatalf("decode %x: generated %v (%s), slot %v (%s)", data, genErr, gc, slotErr, sc)
	}
	if genErr != nil {
		return
	}
	// Spot-check the bit-packed fields against the slot frame, then pin
	// full equivalence by re-encoding both to identical bytes.
	for name, got := range map[string]uint64{
		"version":         uint64(h.Version),
		"ihl":             uint64(h.Ihl),
		"flags":           uint64(h.Flags),
		"fragment_offset": uint64(h.FragmentOffset),
		"total_length":    uint64(h.TotalLength),
	} {
		slot, ok := prog.Slot(name)
		if !ok {
			continue
		}
		if want := frame.Get(slot).AsUint(); got != want {
			t.Fatalf("decode %x: %s = %d, slot %d", data, name, got, want)
		}
	}
	reenc, err := AppendEncodeIPv4Header(nil, &h)
	if err != nil {
		t.Fatalf("re-encode %x: %v", data, err)
	}
	if !bytes.Equal(reenc, data) {
		t.Fatalf("re-encode %x != %x", reenc, data)
	}
}

// TestGeneratedDecodeMatchesSlotProgram sweeps truncations, bit flips,
// trailing bytes and random buffers through both decoders.
func TestGeneratedDecodeMatchesSlotProgram(t *testing.T) {
	prog := headerProgram(t)
	var seeds [][]byte
	for _, ihl := range []uint8{5, 6, 7} {
		h := IPv4Header{
			Version: 4, Ihl: ihl, TotalLength: 20 + 4*uint16(ihl-5),
			Identification: 0x1c46, Flags: 2, Ttl: 64, Protocol: 6,
			Source: 0xC0A80101, Destination: 0x0A000001,
			Options: bytes.Repeat([]byte{0x01}, int(4*(ihl-5))),
		}
		enc, err := EncodeIPv4Header(h)
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, enc)
	}
	for _, enc := range seeds {
		diffDecode(t, prog, enc)
		for n := 0; n < len(enc); n++ {
			diffDecode(t, prog, enc[:n])
		}
		for i := 0; i < len(enc); i++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), enc...)
				mut[i] ^= 1 << bit
				diffDecode(t, prog, mut)
			}
		}
		diffDecode(t, prog, append(append([]byte(nil), enc...), 0x00))
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		buf := make([]byte, rng.Intn(48))
		rng.Read(buf)
		diffDecode(t, prog, buf)
	}
}
